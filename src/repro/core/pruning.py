"""Query-time pruning (Section III-B): Algorithm 2 and Proposition 5.

A :class:`LabelPathSet` wraps one refined set ``P^{>0.5}_{uv}`` together
with the statistics the paper precomputes at indexing time:

- ``sigma_min`` / ``sigma_max`` over the set,
- each path's *upper bound maximizer* ``p_max`` (Definition 10) and *lower
  bound minimizer* ``p_min`` (Definition 11).

At query time, :func:`prune_pair` applies Algorithm 2: a path ``p`` of
``P_sh`` survives only when ``B_p(p_max, sigma_min(P_ht)) <= alpha <=
B_p(p_min, sigma_max(P_ht))`` where ``B_p(p_m, x) = Phi((mu_m - mu_p) /
(sqrt(sigma_p^2+x^2) - sqrt(sigma_m^2+x^2)))`` — the intersection dominance
(Prop. 2) from below and the reverse intersection dominance (Prop. 3) from
above.  For correlated sets the intersection machinery is unsound (variances
do not simply add), so :func:`prune_correlated` applies the correlated bound
dominance of Proposition 5 instead.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.pathsummary import PathSummary
from repro.stats.normal import phi_cdf
from repro.stats.zscores import z_value

__all__ = ["LabelPathSet", "prune_pair", "prune_correlated"]


class LabelPathSet:
    """One refined path set with precomputed pruning statistics.

    ``paths`` must come out of the independent refine: strictly increasing
    means, strictly decreasing sigmas.  The correlated case sets
    ``independent=False`` and only ``sigma_min``/``sigma_max`` are used.
    """

    __slots__ = ("paths", "mus", "sigmas", "sigma_min", "sigma_max", "ub_ratio", "lb_ratio")

    def __init__(self, paths: Sequence[PathSummary], independent: bool = True) -> None:
        self.paths: tuple[PathSummary, ...] = tuple(paths)
        self.mus: tuple[float, ...] = tuple(p.mu for p in self.paths)
        self.sigmas: tuple[float, ...] = tuple(p.sigma for p in self.paths)
        if self.paths:
            self.sigma_min = min(self.sigmas)
            self.sigma_max = max(self.sigmas)
        else:
            self.sigma_min = self.sigma_max = 0.0
        if independent:
            self.ub_ratio, self.lb_ratio = self._bound_refs()
        else:
            self.ub_ratio = self.lb_ratio = None

    def _bound_refs(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Indices of each path's upper bound maximizer / lower bound minimizer.

        Definition 10: ``p_max = argmax_{mu' < mu} Phi((mu-mu')/(sigma'-sigma))``;
        Definition 11: ``p_min = argmin_{mu' > mu} Phi((mu'-mu)/(sigma-sigma'))``.
        ``-1`` marks "no such path" (first/last elements).  Sets are sorted by
        increasing mean and decreasing sigma, so candidates with smaller mean
        are exactly the earlier indices.
        """
        k = len(self.paths)
        ub = [-1] * k
        lb = [-1] * k
        for i in range(k):
            best_ratio = -math.inf
            for j in range(i):
                ratio = (self.mus[i] - self.mus[j]) / (self.sigmas[j] - self.sigmas[i])
                if ratio > best_ratio:
                    best_ratio = ratio
                    ub[i] = j
            best_ratio = math.inf
            for j in range(i + 1, k):
                ratio = (self.mus[j] - self.mus[i]) / (self.sigmas[i] - self.sigmas[j])
                if ratio < best_ratio:
                    best_ratio = ratio
                    lb[i] = j
        return tuple(ub), tuple(lb)

    def bound(self, i: int, j: int, x: float) -> float:
        """``B_{p_i}(p_j, x)`` — the intersection confidence level.

        The y-value where the quantile curves of ``p_i (+) q`` and
        ``p_j (+) q`` cross, for an extension of standard deviation ``x``.
        """
        denom = math.sqrt(self.sigmas[i] ** 2 + x * x) - math.sqrt(
            self.sigmas[j] ** 2 + x * x
        )
        return phi_cdf((self.mus[j] - self.mus[i]) / denom)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


def prune_pair(
    set_sh: LabelPathSet, set_ht: LabelPathSet, alpha: float
) -> tuple[list[int], list[int]]:
    """Algorithm 2: prune both sides of a hoplink against each other.

    Returns the surviving indices of each side.  Pruning one side uses only
    the *precomputed* ``sigma_min``/``sigma_max`` of the other side's full
    stored set, exactly as in the paper (Lines 1-4 of Algorithm 2).
    """
    return (
        _survivors(set_sh, set_ht.sigma_min, set_ht.sigma_max, alpha),
        _survivors(set_ht, set_sh.sigma_min, set_sh.sigma_max, alpha),
    )


def _survivors(
    label_set: LabelPathSet, other_sigma_min: float, other_sigma_max: float, alpha: float
) -> list[int]:
    keep: list[int] = []
    ub_ratio = label_set.ub_ratio
    lb_ratio = label_set.lb_ratio
    for i in range(len(label_set.paths)):
        j = ub_ratio[i]
        if j >= 0 and alpha < label_set.bound(i, j, other_sigma_min):
            continue  # intersection dominance: a smaller-mean path wins at alpha
        j = lb_ratio[i]
        if j >= 0 and alpha > label_set.bound(i, j, other_sigma_max):
            continue  # reverse intersection dominance: a larger-mean path wins
        keep.append(i)
    return keep


def prune_correlated(
    set_sh: LabelPathSet, set_ht: LabelPathSet, alpha: float
) -> tuple[list[int], list[int]]:
    """Proposition 5 pruning for correlated sets.

    ``p_2`` is dominated w.r.t. the other side's set ``P`` when some ``p_1``
    satisfies ``mu_1 + Z_alpha*(sigma_1 + sigma_max(P)) < mu_2``: even with
    maximal positive correlation, ``p_1``'s concatenations stay below
    ``p_2``'s mean alone.
    """
    z = z_value(alpha)
    return (
        _correlated_survivors(set_sh, set_ht.sigma_max, z),
        _correlated_survivors(set_ht, set_sh.sigma_max, z),
    )


def _correlated_survivors(
    label_set: LabelPathSet, other_sigma_max: float, z: float
) -> list[int]:
    if not label_set.paths:
        return []
    threshold = min(
        mu + z * (sigma + other_sigma_max)
        for mu, sigma in zip(label_set.mus, label_set.sigmas)
    )
    return [i for i, mu in enumerate(label_set.mus) if mu <= threshold]
