"""Index persistence: save/load an :class:`NRPIndex` without pickle.

Path summaries form a DAG through their provenance records — label paths
share subpath objects with the edge-driven sets — so summaries are dumped
once each, topologically, and provenance is stored as indices into that
table.  Loading restores the full structure, including vertex recovery
and correlated head/tail windows, bit-for-bit for query purposes.

Version 3 (the current writer) is *crash-safe and self-verifying*: the
file is a one-line JSON header (magic, format, per-section byte lengths,
sha256 over the payload) followed by the concatenated section payloads
(``meta`` / ``graph`` / ``covariances`` / ``planes`` / ``summaries``,
each a JSON document).  Writes go through the atomic temp + fsync +
rename helper of :mod:`repro.resilience.atomic`, so a reader observes
either the old or the new index, never a torn one; :func:`load_index`
verifies lengths and checksum and raises the typed taxonomy of
:mod:`repro.resilience.errors` (:class:`IndexFormatError` /
:class:`IndexTruncatedError` / :class:`IndexCorruptError`) instead of
leaking ``json`` or ``KeyError`` internals.

The section *content* is unchanged from version 2 (columnar summary
table, persisted Definition-10/11 pruning-statistic columns); version-1
(row-per-summary) and version-2 (single unframed JSON document) files
remain readable.  The graph and covariance store are embedded so a
loaded index is self-contained (maintenance keeps working).
"""

from __future__ import annotations

import gzip
import hashlib
import json
import zlib
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.obs import get_registry, get_tracer
from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.errors import (
    IndexCorruptError,
    IndexFileError,
    IndexFormatError,
    IndexTruncatedError,
)
from repro.resilience.failpoints import failpoint

from repro.core.engine import QueryEngine
from repro.core.index import IndexPlane, NRPIndex
from repro.core.pathsummary import PathSummary
from repro.core.refine import NeighborhoodCache, Refiner
from repro.network.covariance import CovarianceStore
from repro.network.graph import StochasticGraph
from repro.treedec.decomposition import TreeDecomposition
from repro.treedec.ordering import contract_in_order

__all__ = ["save_index", "load_index", "verify_index", "FORMAT_VERSION"]

FORMAT_VERSION = 3
_READABLE_FORMATS = (1, 2, 3)

_MAGIC = "nrp-index"
_HEADER_PREFIX = b'{"magic":'
#: Section order inside the v3 payload; ``meta`` carries the top-level
#: scalars (window / z_max / order), the rest mirror the v2 document.
_SECTIONS = ("meta", "graph", "covariances", "planes", "summaries")


# ----------------------------------------------------------------------
# Path summary table (DAG-aware)
# ----------------------------------------------------------------------
class _SummaryTable:
    """Assigns each distinct PathSummary object one slot, children first."""

    def __init__(self) -> None:
        self.index: dict[int, int] = {}
        self.rows: list[list[Any]] = []

    def add(self, summary: PathSummary) -> int:
        slot = self.index.get(id(summary))
        if slot is not None:
            return slot
        # Iterative post-order so provenance children land before parents.
        stack: list[tuple[PathSummary, bool]] = [(summary, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in self.index:
                continue
            if not expanded and isinstance(node.prov, tuple):
                stack.append((node, True))
                stack.append((node.prov[1], False))
                stack.append((node.prov[0], False))
                continue
            if isinstance(node.prov, tuple):
                left, right, via = node.prov
                prov: Any = [self.index[id(left)], self.index[id(right)], via]
            else:
                prov = node.prov  # None or "edge"
            self.index[id(node)] = len(self.rows)
            self.rows.append(
                [
                    node.mu,
                    node.var,
                    node.a,
                    node.b,
                    [list(e) for e in node.win_a],
                    [list(e) for e in node.win_b],
                    node.num_edges,
                    prov,
                ]
            )
        return self.index[id(summary)]

    def columns(self) -> dict[str, Any]:
        """Struct-of-arrays encoding of the table (format 2)."""
        mu: list[float] = []
        var: list[float] = []
        a: list[int] = []
        b: list[int] = []
        num_edges: list[int] = []
        win_flat: list[int] = []
        win_lens: list[int] = []
        prov: list[Any] = []
        for row in self.rows:
            mu.append(row[0])
            var.append(row[1])
            a.append(row[2])
            b.append(row[3])
            win_lens.append(len(row[4]))
            win_lens.append(len(row[5]))
            for edge in row[4]:
                win_flat.extend(edge)
            for edge in row[5]:
                win_flat.extend(edge)
            num_edges.append(row[6])
            prov.append(row[7])
        return {
            "mu": mu,
            "var": var,
            "a": a,
            "b": b,
            "num_edges": num_edges,
            "win_flat": win_flat,
            "win_lens": win_lens,
            "prov": prov,
        }


def _restore_rows(rows: list[list[Any]]) -> list[PathSummary]:
    """Format-1 summary table: one row per summary."""
    restored: list[PathSummary] = []
    for mu, var, a, b, win_a, win_b, num_edges, prov in rows:
        if isinstance(prov, list):
            left, right, via = prov
            provenance: Any = (restored[left], restored[right], via)
        else:
            provenance = prov
        restored.append(
            PathSummary(
                mu,
                var,
                a,
                b,
                tuple(tuple(e) for e in win_a),
                tuple(tuple(e) for e in win_b),
                num_edges,
                provenance,
            )
        )
    return restored


def _restore_columns(cols: dict[str, Any]) -> list[PathSummary]:
    """Format-2 summary table: struct-of-arrays."""
    restored: list[PathSummary] = []
    win_flat = cols["win_flat"]
    win_lens = cols["win_lens"]
    cursor = 0
    for i, (mu, var, a, b, num_edges, prov) in enumerate(
        zip(cols["mu"], cols["var"], cols["a"], cols["b"], cols["num_edges"], cols["prov"])
    ):
        len_a = win_lens[2 * i]
        len_b = win_lens[2 * i + 1]
        win_a = tuple(
            (win_flat[cursor + 2 * k], win_flat[cursor + 2 * k + 1])
            for k in range(len_a)
        )
        cursor += 2 * len_a
        win_b = tuple(
            (win_flat[cursor + 2 * k], win_flat[cursor + 2 * k + 1])
            for k in range(len_b)
        )
        cursor += 2 * len_b
        if isinstance(prov, list):
            left, right, via = prov
            provenance: Any = (restored[left], restored[right], via)
        else:
            provenance = prov
        restored.append(
            PathSummary(mu, var, a, b, win_a, win_b, num_edges, provenance)
        )
    return restored


# ----------------------------------------------------------------------
# Plane / store encoding
# ----------------------------------------------------------------------
def _encode_plane(plane: IndexPlane, table: _SummaryTable) -> dict[str, Any]:
    store = plane.label_store
    label_keys: list[list[int]] = []
    label_slots: list[list[int]] = []
    label_ub: list[list[int]] = []
    label_lb: list[list[int]] = []
    for v, entry in plane.labels.items():
        for u, label_set in entry.items():
            label_keys.append([v, u])
            label_slots.append([table.add(p) for p in label_set.paths])
            if store.independent:
                ub, lb = store.bound_refs(store.entry_slice((v, u)))
                label_ub.append(list(ub))
                label_lb.append(list(lb))
    return {
        "direction": plane.direction,
        "edge_sets": [
            [list(key), [table.add(p) for p in paths]]
            for key, paths in plane.edge_store.sets.items()
        ],
        "centers": [
            [list(key), list(centers)]
            for key, centers in plane.edge_store.centers.items()
        ],
        "labels": {
            "keys": label_keys,
            "slots": label_slots,
            "ub": label_ub if store.independent else None,
            "lb": label_lb if store.independent else None,
        },
        "label_owners": sorted(plane.labels),
    }


def _decode_plane(
    data: dict[str, Any],
    summaries: list[PathSummary],
    refiner: Refiner,
    fmt: int,
) -> IndexPlane:
    plane = IndexPlane.empty(data["direction"], refiner)
    for key, slots in data["edge_sets"]:
        plane.edge_store.set_paths(tuple(key), [summaries[i] for i in slots])
    for key, centers in data["centers"]:
        for center in centers:
            plane.edge_store.add_center(tuple(key), center)
    plane.labels = {v: {} for v in data["label_owners"]}
    store = plane.label_store
    if fmt >= 2:
        section = data["labels"]
        ub = section["ub"]
        lb = section["lb"]
        for i, ((v, u), slots) in enumerate(zip(section["keys"], section["slots"])):
            precomputed = (ub[i], lb[i]) if store.independent and ub else None
            view = store.add_entry(
                (v, u), [summaries[k] for k in slots], precomputed=precomputed
            )
            plane.labels.setdefault(v, {})[u] = view
    else:
        for v, u, slots in data["labels"]:
            view = store.add_entry((v, u), [summaries[i] for i in slots])
            plane.labels.setdefault(v, {})[u] = view
    return plane


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save_index(index: NRPIndex, path: str | Path, *, retries: int = 0) -> None:
    """Serialise the index (graph + covariances + all planes) to ``path``.

    A ``.gz`` suffix selects gzip compression.  Writes the current
    (framed, checksummed, version-3) format through the atomic
    temp + fsync + rename helper: a crash at any point leaves either the
    previous file or the complete new one.  ``retries`` re-attempts the
    write that many extra times on transient ``OSError``.
    """
    started = perf_counter()
    with get_tracer().span("serialization.save", path=str(path)) as span:
        raw = _encode_framed(index)
        span.set(bytes=len(raw))
    failpoint("serialization.save.encoded")
    path = Path(path)
    if path.suffix == ".gz":
        # mtime=0 keeps saved bytes deterministic (crash-consistency tests
        # compare whole-file checksums across replays).
        data = gzip.compress(raw, mtime=0)
    else:
        data = raw
    atomic_write_bytes(
        path, data, retries=retries, failpoint_prefix="serialization.save"
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter("serialization.saved_bytes").inc(len(data))
        registry.timer("serialization.save").observe(perf_counter() - started)


def _encode_sections(index: NRPIndex) -> dict[str, Any]:
    """The five v3 sections as JSON-ready objects."""
    table = _SummaryTable()
    planes = [_encode_plane(plane, table) for plane in index.planes()]
    return {
        "meta": {
            "window": index.window,
            "z_max": index.z_max,
            "order": list(index.td.order),
        },
        "graph": {
            "vertices": sorted(index.graph.vertices()),
            "edges": [
                [u, v, w.mu, w.variance] for u, v, w in index.graph.edges()
            ],
            "coordinates": [
                [v, *index.graph.coordinates(v)]
                for v in index.graph.vertices()
                if index.graph.coordinates(v) is not None
            ],
        },
        "covariances": [[list(e), list(f), c] for e, f, c in index.cov.items()],
        "planes": planes,
        "summaries": table.columns(),
    }


def _encode_framed(index: NRPIndex) -> bytes:
    """Header line (lengths + sha256) followed by the section payloads."""
    sections = _encode_sections(index)
    blobs = [
        json.dumps(sections[name], separators=(",", ":")).encode("utf-8")
        for name in _SECTIONS
    ]
    payload = b"".join(blobs)
    header = {
        "magic": _MAGIC,
        "format": FORMAT_VERSION,
        "sections": [[name, len(blob)] for name, blob in zip(_SECTIONS, blobs)],
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    return json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n" + payload


def load_index(path: str | Path) -> NRPIndex:
    """Load an index written by :func:`save_index` (format 1, 2, or 3).

    Raises the typed taxonomy of :mod:`repro.resilience.errors` on any
    damage: :class:`IndexFormatError` for files that are not a readable
    NRP index, :class:`IndexTruncatedError` for torn writes, and
    :class:`IndexCorruptError` for checksum or structure damage.  A
    damaged file never yields a wrong index.
    """
    started = perf_counter()
    path = Path(path)
    raw = _read_raw(path)
    with get_tracer().span(
        "serialization.load", path=str(path), bytes=len(raw)
    ):
        document = _parse_document(raw)
        try:
            index = _decode_document(document)
        except IndexFileError:
            raise
        except (KeyError, ValueError, TypeError, AttributeError, IndexError) as exc:
            raise IndexCorruptError(
                f"index document is structurally damaged: {exc!r}"
            ) from exc
    registry = get_registry()
    if registry.enabled:
        registry.counter("serialization.loaded_bytes").inc(len(raw))
        registry.timer("serialization.load").observe(perf_counter() - started)
    return index


def verify_index(path: str | Path) -> dict[str, Any]:
    """Check ``path``'s framing, checksum, and section structure.

    Cheap relative to :func:`load_index` (no index objects are built);
    returns a report dict on success and raises the same typed taxonomy
    on damage.  Backs the ``repro index verify`` CLI subcommand.
    """
    path = Path(path)
    raw = _read_raw(path)
    document = _parse_document(raw)
    fmt = document["format"]
    for key in ("graph", "covariances", "planes", "summaries", "window", "order"):
        if key not in document:
            raise IndexCorruptError(f"index document is missing section {key!r}")
    graph = document["graph"]
    if not isinstance(graph, dict) or "vertices" not in graph or "edges" not in graph:
        raise IndexCorruptError("graph section is malformed")
    planes = document["planes"]
    if not isinstance(planes, list) or not planes:
        raise IndexCorruptError("index file contains no planes")
    directions = []
    for plane in planes:
        if not isinstance(plane, dict) or "direction" not in plane:
            raise IndexCorruptError("plane section is malformed")
        directions.append(plane["direction"])
    if "high" not in directions:
        raise IndexCorruptError("index file contains no high plane")
    return {
        "format": fmt,
        "bytes": len(raw),
        "checksummed": fmt >= 3,
        "vertices": len(graph["vertices"]),
        "edges": len(graph["edges"]),
        "planes": directions,
    }


def _read_raw(path: Path) -> bytes:
    """The (decompressed) file bytes, with gzip damage typed."""
    blob = path.read_bytes()
    if path.suffix != ".gz":
        return blob
    try:
        return gzip.decompress(blob)
    except EOFError as exc:
        raise IndexTruncatedError(f"{path}: gzip stream truncated") from exc
    except (gzip.BadGzipFile, zlib.error) as exc:
        raise IndexCorruptError(f"{path}: gzip stream damaged: {exc}") from exc


def _parse_document(raw: bytes) -> dict[str, Any]:
    """Raw bytes -> the logical index document, verifying v3 framing."""
    if not raw:
        raise IndexTruncatedError("index file is empty")
    if raw.startswith(_HEADER_PREFIX):
        return _parse_framed(raw)
    if _HEADER_PREFIX.startswith(raw):
        # Strict prefix of the v3 magic: a torn write, not a legacy file.
        raise IndexTruncatedError("index file cut inside the v3 header magic")
    if raw[:1] == b"{":
        # Legacy v1/v2: one unframed JSON document, no checksum.
        try:
            document = json.loads(raw)
        except ValueError as exc:
            raise IndexCorruptError(
                f"legacy index document unreadable (corrupt or truncated): {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise IndexFormatError("index document is not a JSON object")
        fmt = document.get("format")
        if fmt not in _READABLE_FORMATS:
            raise IndexFormatError(
                f"unsupported index format {fmt!r}; "
                f"this build reads versions {_READABLE_FORMATS}"
            )
        return document
    raise IndexFormatError("not an NRP index file (unrecognised leading bytes)")


def _parse_framed(raw: bytes) -> dict[str, Any]:
    newline = raw.find(b"\n")
    if newline < 0:
        raise IndexTruncatedError("v3 header line is not terminated")
    try:
        header = json.loads(raw[:newline])
    except ValueError as exc:
        raise IndexCorruptError(f"v3 header is unreadable: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise IndexFormatError(f"bad magic; expected {_MAGIC!r}")
    fmt = header.get("format")
    if fmt not in _READABLE_FORMATS:
        raise IndexFormatError(
            f"unsupported index format {fmt!r}; "
            f"this build reads versions {_READABLE_FORMATS}"
        )
    sections = header.get("sections")
    expected_sha = header.get("sha256")
    total = header.get("payload_bytes")
    if (
        not isinstance(sections, list)
        or not isinstance(expected_sha, str)
        or not isinstance(total, int)
        or not all(
            isinstance(entry, list)
            and len(entry) == 2
            and isinstance(entry[0], str)
            and isinstance(entry[1], int)
            and entry[1] >= 0
            for entry in sections
        )
    ):
        raise IndexCorruptError("v3 header is malformed")
    if [name for name, _ in sections] != list(_SECTIONS):
        raise IndexCorruptError("v3 header section table has unexpected entries")
    if sum(length for _, length in sections) != total:
        raise IndexCorruptError("v3 section lengths do not sum to payload_bytes")
    payload = raw[newline + 1 :]
    if len(payload) < total:
        raise IndexTruncatedError(
            f"payload holds {len(payload)} of {total} declared bytes"
        )
    if len(payload) > total:
        raise IndexCorruptError(
            f"{len(payload) - total} trailing bytes after the declared payload"
        )
    actual_sha = hashlib.sha256(payload).hexdigest()
    if actual_sha != expected_sha:
        raise IndexCorruptError(
            f"payload checksum mismatch (stored {expected_sha[:12]}..., "
            f"computed {actual_sha[:12]}...)"
        )
    document: dict[str, Any] = {"format": fmt}
    cursor = 0
    for name, length in sections:
        blob = payload[cursor : cursor + length]
        cursor += length
        try:
            value = json.loads(blob)
        except ValueError as exc:
            raise IndexCorruptError(f"section {name!r} is undecodable: {exc}") from exc
        if name == "meta":
            if not isinstance(value, dict):
                raise IndexCorruptError("meta section is not a JSON object")
            document.update(value)
        else:
            document[name] = value
    return document


def _decode_document(document: dict) -> NRPIndex:
    fmt = document.get("format")
    if fmt not in _READABLE_FORMATS:
        raise IndexFormatError(
            f"unsupported index format {fmt!r}; "
            f"this build reads versions {_READABLE_FORMATS}"
        )

    graph = StochasticGraph()
    for v in document["graph"]["vertices"]:
        graph.add_vertex(v)
    for u, v, mu, var in document["graph"]["edges"]:
        graph.add_edge(u, v, mu, var)
    for v, x, y in document["graph"]["coordinates"]:
        graph.set_coordinates(v, x, y)
    cov = CovarianceStore()
    for e, f, value in document["covariances"]:
        cov.set(tuple(e), tuple(f), value)

    index = NRPIndex.__new__(NRPIndex)
    index.graph = graph
    index.cov = cov
    index.correlated = not cov.is_empty()
    index.window = document["window"]
    index.z_max = document["z_max"]
    order = document["order"]
    index.td = TreeDecomposition(order, contract_in_order(graph, order))
    if index.correlated:
        neighborhoods = NeighborhoodCache(graph, cov, index.window)
        flags = cov.compute_vertex_flags(graph, index.window)
        plane_cov: CovarianceStore | None = cov
    else:
        neighborhoods = None
        flags = None
        plane_cov = None
    if fmt >= 2:
        summaries = _restore_columns(document["summaries"])
    else:
        summaries = _restore_rows(document["summaries"])
    index.high = None  # type: ignore[assignment]
    index.low = None
    for plane_data in document["planes"]:
        direction = plane_data["direction"]
        refiner = Refiner(
            index.z_max, plane_cov, neighborhoods, flags, direction=direction
        )
        plane = _decode_plane(plane_data, summaries, refiner, fmt)
        if direction == "high":
            index.high = plane
        else:
            index.low = plane
    if index.high is None:
        raise ValueError("index file contains no high plane")
    index.engine = QueryEngine(index)
    index.construction_seconds = 0.0
    return index
