"""Index persistence: save/load an :class:`NRPIndex` without pickle.

The index is written as a single JSON document (optionally gzipped by file
extension).  Path summaries form a DAG through their provenance records —
label paths share subpath objects with the edge-driven sets — so summaries
are dumped once each, topologically, and provenance is stored as indices
into that table.  Loading restores the full structure, including vertex
recovery and correlated head/tail windows, bit-for-bit for query purposes.

The graph and covariance store are embedded so a loaded index is
self-contained (maintenance keeps working).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.core.index import IndexPlane, NRPIndex
from repro.core.pathsummary import PathSummary
from repro.core.pruning import LabelPathSet
from repro.core.refine import NeighborhoodCache, Refiner
from repro.core.construction import EdgeSetStore
from repro.network.covariance import CovarianceStore
from repro.network.graph import StochasticGraph
from repro.treedec.decomposition import TreeDecomposition
from repro.treedec.ordering import contract_in_order

__all__ = ["save_index", "load_index", "FORMAT_VERSION"]

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Path summary table (DAG-aware)
# ----------------------------------------------------------------------
class _SummaryTable:
    """Assigns each distinct PathSummary object one slot, children first."""

    def __init__(self) -> None:
        self.index: dict[int, int] = {}
        self.rows: list[list[Any]] = []

    def add(self, summary: PathSummary) -> int:
        slot = self.index.get(id(summary))
        if slot is not None:
            return slot
        # Iterative post-order so provenance children land before parents.
        stack: list[tuple[PathSummary, bool]] = [(summary, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in self.index:
                continue
            if not expanded and isinstance(node.prov, tuple):
                stack.append((node, True))
                stack.append((node.prov[1], False))
                stack.append((node.prov[0], False))
                continue
            if isinstance(node.prov, tuple):
                left, right, via = node.prov
                prov: Any = [self.index[id(left)], self.index[id(right)], via]
            else:
                prov = node.prov  # None or "edge"
            self.index[id(node)] = len(self.rows)
            self.rows.append(
                [
                    node.mu,
                    node.var,
                    node.a,
                    node.b,
                    [list(e) for e in node.win_a],
                    [list(e) for e in node.win_b],
                    node.num_edges,
                    prov,
                ]
            )
        return self.index[id(summary)]


def _restore_summaries(rows: list[list[Any]]) -> list[PathSummary]:
    restored: list[PathSummary] = []
    for mu, var, a, b, win_a, win_b, num_edges, prov in rows:
        if isinstance(prov, list):
            left, right, via = prov
            provenance: Any = (restored[left], restored[right], via)
        else:
            provenance = prov
        restored.append(
            PathSummary(
                mu,
                var,
                a,
                b,
                tuple(tuple(e) for e in win_a),
                tuple(tuple(e) for e in win_b),
                num_edges,
                provenance,
            )
        )
    return restored


# ----------------------------------------------------------------------
# Plane / store encoding
# ----------------------------------------------------------------------
def _encode_plane(plane: IndexPlane, table: _SummaryTable) -> dict[str, Any]:
    return {
        "direction": plane.direction,
        "edge_sets": [
            [list(key), [table.add(p) for p in paths]]
            for key, paths in plane.edge_store.sets.items()
        ],
        "centers": [
            [list(key), centers] for key, centers in plane.edge_store.centers.items()
        ],
        "labels": [
            [v, u, [table.add(p) for p in label_set.paths]]
            for v, entry in plane.labels.items()
            for u, label_set in entry.items()
        ],
        "label_owners": sorted(plane.labels),
    }


def _decode_plane(
    data: dict[str, Any],
    summaries: list[PathSummary],
    refiner: Refiner,
    independent_stats: bool,
) -> IndexPlane:
    plane = IndexPlane.__new__(IndexPlane)
    plane.direction = data["direction"]
    plane.refiner = refiner
    store = EdgeSetStore()
    for key, slots in data["edge_sets"]:
        store.sets[tuple(key)] = [summaries[i] for i in slots]
    for key, centers in data["centers"]:
        store.centers[tuple(key)] = list(centers)
    plane.edge_store = store
    labels: dict[int, dict[int, LabelPathSet]] = {
        v: {} for v in data["label_owners"]
    }
    for v, u, slots in data["labels"]:
        labels.setdefault(v, {})[u] = LabelPathSet(
            [summaries[i] for i in slots], independent=independent_stats
        )
    plane.labels = labels
    return plane


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save_index(index: NRPIndex, path: str | Path) -> None:
    """Serialise the index (graph + covariances + all planes) to ``path``.

    A ``.gz`` suffix selects gzip compression.
    """
    table = _SummaryTable()
    planes = [_encode_plane(plane, table) for plane in index.planes()]
    document = {
        "format": FORMAT_VERSION,
        "graph": {
            "vertices": sorted(index.graph.vertices()),
            "edges": [
                [u, v, w.mu, w.variance] for u, v, w in index.graph.edges()
            ],
            "coordinates": [
                [v, *index.graph.coordinates(v)]
                for v in index.graph.vertices()
                if index.graph.coordinates(v) is not None
            ],
        },
        "covariances": [[list(e), list(f), c] for e, f, c in index.cov.items()],
        "window": index.window,
        "z_max": index.z_max,
        "order": list(index.td.order),
        "planes": planes,
        "summaries": table.rows,
    }
    raw = json.dumps(document, separators=(",", ":")).encode("utf-8")
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wb") as handle:
            handle.write(raw)
    else:
        path.write_bytes(raw)


def load_index(path: str | Path) -> NRPIndex:
    """Load an index written by :func:`save_index`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rb") as handle:
            raw = handle.read()
    else:
        raw = path.read_bytes()
    document = json.loads(raw)
    if document.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format {document.get('format')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )

    graph = StochasticGraph()
    for v in document["graph"]["vertices"]:
        graph.add_vertex(v)
    for u, v, mu, var in document["graph"]["edges"]:
        graph.add_edge(u, v, mu, var)
    for v, x, y in document["graph"]["coordinates"]:
        graph.set_coordinates(v, x, y)
    cov = CovarianceStore()
    for e, f, value in document["covariances"]:
        cov.set(tuple(e), tuple(f), value)

    index = NRPIndex.__new__(NRPIndex)
    index.graph = graph
    index.cov = cov
    index.correlated = not cov.is_empty()
    index.window = document["window"]
    index.z_max = document["z_max"]
    order = document["order"]
    index.td = TreeDecomposition(order, contract_in_order(graph, order))
    if index.correlated:
        neighborhoods = NeighborhoodCache(graph, cov, index.window)
        flags = cov.compute_vertex_flags(graph, index.window)
        plane_cov: CovarianceStore | None = cov
    else:
        neighborhoods = None
        flags = None
        plane_cov = None
    summaries = _restore_summaries(document["summaries"])
    index.high = None  # type: ignore[assignment]
    index.low = None
    for plane_data in document["planes"]:
        direction = plane_data["direction"]
        refiner = Refiner(
            index.z_max, plane_cov, neighborhoods, flags, direction=direction
        )
        independent_stats = not index.correlated and direction == "high"
        plane = _decode_plane(plane_data, summaries, refiner, independent_stats)
        if direction == "high":
            index.high = plane
        else:
            index.low = plane
    if index.high is None:
        raise ValueError("index file contains no high plane")
    index.construction_seconds = 0.0
    return index
