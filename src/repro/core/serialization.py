"""Index persistence: save/load an :class:`NRPIndex` without pickle.

The index is written as a single JSON document (optionally gzipped by file
extension).  Path summaries form a DAG through their provenance records —
label paths share subpath objects with the edge-driven sets — so summaries
are dumped once each, topologically, and provenance is stored as indices
into that table.  Loading restores the full structure, including vertex
recovery and correlated head/tail windows, bit-for-bit for query purposes.

Version 2 (the current writer) mirrors the in-memory columnar storage
layer: the summary table is stored as struct-of-arrays columns (``mu`` /
``var`` / endpoint / flattened window arrays), and each plane's label
section persists the precomputed Definition-10/11 pruning-statistic
columns, so loading rebuilds every :class:`LabelStore` without the O(k^2)
bound-reference recomputation.  Version-1 files (row-per-summary, no
stats) remain readable.

The graph and covariance store are embedded so a loaded index is
self-contained (maintenance keeps working).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.obs import get_registry, get_tracer

from repro.core.engine import QueryEngine
from repro.core.index import IndexPlane, NRPIndex
from repro.core.pathsummary import PathSummary
from repro.core.refine import NeighborhoodCache, Refiner
from repro.network.covariance import CovarianceStore
from repro.network.graph import StochasticGraph
from repro.treedec.decomposition import TreeDecomposition
from repro.treedec.ordering import contract_in_order

__all__ = ["save_index", "load_index", "FORMAT_VERSION"]

FORMAT_VERSION = 2
_READABLE_FORMATS = (1, 2)


# ----------------------------------------------------------------------
# Path summary table (DAG-aware)
# ----------------------------------------------------------------------
class _SummaryTable:
    """Assigns each distinct PathSummary object one slot, children first."""

    def __init__(self) -> None:
        self.index: dict[int, int] = {}
        self.rows: list[list[Any]] = []

    def add(self, summary: PathSummary) -> int:
        slot = self.index.get(id(summary))
        if slot is not None:
            return slot
        # Iterative post-order so provenance children land before parents.
        stack: list[tuple[PathSummary, bool]] = [(summary, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in self.index:
                continue
            if not expanded and isinstance(node.prov, tuple):
                stack.append((node, True))
                stack.append((node.prov[1], False))
                stack.append((node.prov[0], False))
                continue
            if isinstance(node.prov, tuple):
                left, right, via = node.prov
                prov: Any = [self.index[id(left)], self.index[id(right)], via]
            else:
                prov = node.prov  # None or "edge"
            self.index[id(node)] = len(self.rows)
            self.rows.append(
                [
                    node.mu,
                    node.var,
                    node.a,
                    node.b,
                    [list(e) for e in node.win_a],
                    [list(e) for e in node.win_b],
                    node.num_edges,
                    prov,
                ]
            )
        return self.index[id(summary)]

    def columns(self) -> dict[str, Any]:
        """Struct-of-arrays encoding of the table (format 2)."""
        mu: list[float] = []
        var: list[float] = []
        a: list[int] = []
        b: list[int] = []
        num_edges: list[int] = []
        win_flat: list[int] = []
        win_lens: list[int] = []
        prov: list[Any] = []
        for row in self.rows:
            mu.append(row[0])
            var.append(row[1])
            a.append(row[2])
            b.append(row[3])
            win_lens.append(len(row[4]))
            win_lens.append(len(row[5]))
            for edge in row[4]:
                win_flat.extend(edge)
            for edge in row[5]:
                win_flat.extend(edge)
            num_edges.append(row[6])
            prov.append(row[7])
        return {
            "mu": mu,
            "var": var,
            "a": a,
            "b": b,
            "num_edges": num_edges,
            "win_flat": win_flat,
            "win_lens": win_lens,
            "prov": prov,
        }


def _restore_rows(rows: list[list[Any]]) -> list[PathSummary]:
    """Format-1 summary table: one row per summary."""
    restored: list[PathSummary] = []
    for mu, var, a, b, win_a, win_b, num_edges, prov in rows:
        if isinstance(prov, list):
            left, right, via = prov
            provenance: Any = (restored[left], restored[right], via)
        else:
            provenance = prov
        restored.append(
            PathSummary(
                mu,
                var,
                a,
                b,
                tuple(tuple(e) for e in win_a),
                tuple(tuple(e) for e in win_b),
                num_edges,
                provenance,
            )
        )
    return restored


def _restore_columns(cols: dict[str, Any]) -> list[PathSummary]:
    """Format-2 summary table: struct-of-arrays."""
    restored: list[PathSummary] = []
    win_flat = cols["win_flat"]
    win_lens = cols["win_lens"]
    cursor = 0
    for i, (mu, var, a, b, num_edges, prov) in enumerate(
        zip(cols["mu"], cols["var"], cols["a"], cols["b"], cols["num_edges"], cols["prov"])
    ):
        len_a = win_lens[2 * i]
        len_b = win_lens[2 * i + 1]
        win_a = tuple(
            (win_flat[cursor + 2 * k], win_flat[cursor + 2 * k + 1])
            for k in range(len_a)
        )
        cursor += 2 * len_a
        win_b = tuple(
            (win_flat[cursor + 2 * k], win_flat[cursor + 2 * k + 1])
            for k in range(len_b)
        )
        cursor += 2 * len_b
        if isinstance(prov, list):
            left, right, via = prov
            provenance: Any = (restored[left], restored[right], via)
        else:
            provenance = prov
        restored.append(
            PathSummary(mu, var, a, b, win_a, win_b, num_edges, provenance)
        )
    return restored


# ----------------------------------------------------------------------
# Plane / store encoding
# ----------------------------------------------------------------------
def _encode_plane(plane: IndexPlane, table: _SummaryTable) -> dict[str, Any]:
    store = plane.label_store
    label_keys: list[list[int]] = []
    label_slots: list[list[int]] = []
    label_ub: list[list[int]] = []
    label_lb: list[list[int]] = []
    for v, entry in plane.labels.items():
        for u, label_set in entry.items():
            label_keys.append([v, u])
            label_slots.append([table.add(p) for p in label_set.paths])
            if store.independent:
                ub, lb = store.bound_refs(store.entry_slice((v, u)))
                label_ub.append(list(ub))
                label_lb.append(list(lb))
    return {
        "direction": plane.direction,
        "edge_sets": [
            [list(key), [table.add(p) for p in paths]]
            for key, paths in plane.edge_store.sets.items()
        ],
        "centers": [
            [list(key), list(centers)]
            for key, centers in plane.edge_store.centers.items()
        ],
        "labels": {
            "keys": label_keys,
            "slots": label_slots,
            "ub": label_ub if store.independent else None,
            "lb": label_lb if store.independent else None,
        },
        "label_owners": sorted(plane.labels),
    }


def _decode_plane(
    data: dict[str, Any],
    summaries: list[PathSummary],
    refiner: Refiner,
    fmt: int,
) -> IndexPlane:
    plane = IndexPlane.empty(data["direction"], refiner)
    for key, slots in data["edge_sets"]:
        plane.edge_store.set_paths(tuple(key), [summaries[i] for i in slots])
    for key, centers in data["centers"]:
        for center in centers:
            plane.edge_store.add_center(tuple(key), center)
    plane.labels = {v: {} for v in data["label_owners"]}
    store = plane.label_store
    if fmt >= 2:
        section = data["labels"]
        ub = section["ub"]
        lb = section["lb"]
        for i, ((v, u), slots) in enumerate(zip(section["keys"], section["slots"])):
            precomputed = (ub[i], lb[i]) if store.independent and ub else None
            view = store.add_entry(
                (v, u), [summaries[k] for k in slots], precomputed=precomputed
            )
            plane.labels.setdefault(v, {})[u] = view
    else:
        for v, u, slots in data["labels"]:
            view = store.add_entry((v, u), [summaries[i] for i in slots])
            plane.labels.setdefault(v, {})[u] = view
    return plane


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save_index(index: NRPIndex, path: str | Path) -> None:
    """Serialise the index (graph + covariances + all planes) to ``path``.

    A ``.gz`` suffix selects gzip compression.  Writes the current
    (columnar, version-2) format.
    """
    started = perf_counter()
    with get_tracer().span("serialization.save", path=str(path)) as span:
        raw = _encode_document(index)
        span.set(bytes=len(raw))
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wb") as handle:
            handle.write(raw)
    else:
        path.write_bytes(raw)
    registry = get_registry()
    if registry.enabled:
        registry.counter("serialization.saved_bytes").inc(len(raw))
        registry.timer("serialization.save").observe(perf_counter() - started)


def _encode_document(index: NRPIndex) -> bytes:
    table = _SummaryTable()
    planes = [_encode_plane(plane, table) for plane in index.planes()]
    document = {
        "format": FORMAT_VERSION,
        "graph": {
            "vertices": sorted(index.graph.vertices()),
            "edges": [
                [u, v, w.mu, w.variance] for u, v, w in index.graph.edges()
            ],
            "coordinates": [
                [v, *index.graph.coordinates(v)]
                for v in index.graph.vertices()
                if index.graph.coordinates(v) is not None
            ],
        },
        "covariances": [[list(e), list(f), c] for e, f, c in index.cov.items()],
        "window": index.window,
        "z_max": index.z_max,
        "order": list(index.td.order),
        "planes": planes,
        "summaries": table.columns(),
    }
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def load_index(path: str | Path) -> NRPIndex:
    """Load an index written by :func:`save_index` (format 1 or 2)."""
    started = perf_counter()
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rb") as handle:
            raw = handle.read()
    else:
        raw = path.read_bytes()
    with get_tracer().span(
        "serialization.load", path=str(path), bytes=len(raw)
    ):
        index = _decode_document(json.loads(raw))
    registry = get_registry()
    if registry.enabled:
        registry.counter("serialization.loaded_bytes").inc(len(raw))
        registry.timer("serialization.load").observe(perf_counter() - started)
    return index


def _decode_document(document: dict) -> NRPIndex:
    fmt = document.get("format")
    if fmt not in _READABLE_FORMATS:
        raise ValueError(
            f"unsupported index format {fmt!r}; "
            f"this build reads versions {_READABLE_FORMATS}"
        )

    graph = StochasticGraph()
    for v in document["graph"]["vertices"]:
        graph.add_vertex(v)
    for u, v, mu, var in document["graph"]["edges"]:
        graph.add_edge(u, v, mu, var)
    for v, x, y in document["graph"]["coordinates"]:
        graph.set_coordinates(v, x, y)
    cov = CovarianceStore()
    for e, f, value in document["covariances"]:
        cov.set(tuple(e), tuple(f), value)

    index = NRPIndex.__new__(NRPIndex)
    index.graph = graph
    index.cov = cov
    index.correlated = not cov.is_empty()
    index.window = document["window"]
    index.z_max = document["z_max"]
    order = document["order"]
    index.td = TreeDecomposition(order, contract_in_order(graph, order))
    if index.correlated:
        neighborhoods = NeighborhoodCache(graph, cov, index.window)
        flags = cov.compute_vertex_flags(graph, index.window)
        plane_cov: CovarianceStore | None = cov
    else:
        neighborhoods = None
        flags = None
        plane_cov = None
    if fmt >= 2:
        summaries = _restore_columns(document["summaries"])
    else:
        summaries = _restore_rows(document["summaries"])
    index.high = None  # type: ignore[assignment]
    index.low = None
    for plane_data in document["planes"]:
        direction = plane_data["direction"]
        refiner = Refiner(
            index.z_max, plane_cov, neighborhoods, flags, direction=direction
        )
        plane = _decode_plane(plane_data, summaries, refiner, fmt)
        if direction == "high":
            index.high = plane
        else:
            index.low = plane
    if index.high is None:
        raise ValueError("index file contains no high plane")
    index.engine = QueryEngine(index)
    index.construction_seconds = 0.0
    return index
