"""Query results, statistics, and the Algorithm-1 entry point.

The actual query machinery lives in :mod:`repro.core.engine`, which splits
Algorithm 1 into a planning stage (plane choice, LCA/ancestor shortcut,
separator selection, prune-index computation) and an execution stage (the
concatenation scan over columnar label views).  This module keeps the
result/statistics dataclasses and the long-standing :func:`answer_query`
convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pathsummary import PathSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import NRPIndex
    from repro.obs.metrics import MetricsRegistry

__all__ = ["QueryStats", "QueryResult", "answer_query"]


#: QueryStats field -> the observability counter mirroring it
#: (``repro.obs``); the registry aggregates exactly these five counters
#: process-wide, so :meth:`QueryStats.from_registry` is a faithful view.
_REGISTRY_COUNTERS = {
    "hoplinks": "engine.hoplinks",
    "concatenations": "engine.concatenations",
    "label_lookups": "engine.label_lookups",
    "candidate_paths": "engine.candidate_paths",
    "surviving_paths": "engine.surviving_paths",
}


@dataclass
class QueryStats:
    """Counters behind Figures 8 and 9.

    Semantics worth pinning down (locked by a regression test in
    ``tests/test_obs_integration.py``):

    - On the **separator** case, ``candidate_paths`` counts every stored
      path of both hoplink label sets and ``surviving_paths`` the subset
      Algorithm 2 / Proposition 5 kept, so ``candidate - surviving`` is
      the pruning power of Figure 9.
    - On the **ancestor** case (one endpoint is the other's tree
      ancestor), ``surviving_paths == candidate_paths`` *by design*, not
      by accident: the query scans a single label entry and the paper's
      pair-pruning has no second set to prune against, so every candidate
      survives.  Counting it this way keeps prune ratios attributable to
      the separator case only.
    - The **trivial** case (``s == t``) touches no labels and contributes
      nothing.

    The same five counters are mirrored into the process-wide
    observability registry (``repro.obs``) whenever it is enabled;
    :meth:`from_registry` reads them back, making ``QueryStats`` a thin
    view over the registry for whole-process aggregates.
    """

    hoplinks: int = 0
    concatenations: int = 0
    label_lookups: int = 0
    candidate_paths: int = 0
    surviving_paths: int = 0
    #: Kernel backend that answered the query ("python"/"vector"), set by
    #: ``QueryEngine.answer``.  Informational provenance, not a counter:
    #: excluded from equality and left untouched by :meth:`merge`.
    backend: str = field(default="", compare=False)

    def merge(self, other: "QueryStats") -> None:
        self.hoplinks += other.hoplinks
        self.concatenations += other.concatenations
        self.label_lookups += other.label_lookups
        self.candidate_paths += other.candidate_paths
        self.surviving_paths += other.surviving_paths

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _REGISTRY_COUNTERS}

    @classmethod
    def from_registry(cls, registry: "MetricsRegistry | None" = None) -> "QueryStats":
        """The process-wide aggregate as a ``QueryStats`` (see ``repro.obs``).

        Reads the engine counters the observability registry accumulated
        since its last reset — the whole-process equivalent of threading
        one shared accumulator through every query call.
        """
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        return cls(
            **{
                field_name: registry.counter(counter_name).value
                for field_name, counter_name in _REGISTRY_COUNTERS.items()
            }
        )


@dataclass
class QueryResult:
    """An answered RSP query."""

    source: int
    target: int
    alpha: float
    value: float
    mu: float
    variance: float
    summary: PathSummary
    stats: QueryStats = field(default_factory=QueryStats)
    #: True when a deadline expired and this is the mean-only fallback
    #: answer (a valid path with exact moments, but optimal only at
    #: alpha = 0.5) — see docs/resilience.md.
    degraded: bool = False

    @property
    def path(self) -> list[int]:
        """The vertex sequence of the optimal path (reconstructed lazily)."""
        vertices = self.summary.vertices()
        if vertices and vertices[0] != self.source:
            vertices.reverse()
        return vertices

    def digest(self) -> int:
        """Bit-exact 32-bit digest of this answer (value, moments, path
        length, degraded flag) — the replay-verification token carried in
        flight records and workload files (``repro.obs.flight``)."""
        from repro.obs.flight import result_digest

        return result_digest(self)


def answer_query(
    index: "NRPIndex",
    s: int,
    t: int,
    alpha: float,
    use_pruning: bool = True,
    stats: QueryStats | None = None,
) -> QueryResult:
    """Algorithm 1 via the index's engine.

    ``use_pruning=False`` is the Figure-9 ablation variant.  Queries with
    ``alpha >= 0.5`` use the ``P^{>0.5}`` plane with the full Algorithm-2 /
    Proposition-5 pruning; ``alpha < 0.5`` uses the symmetric low plane (if
    built) without intersection pruning, whose statistics are only defined
    for the high side.
    """
    return index.engine.answer(s, t, alpha, use_pruning, stats)
