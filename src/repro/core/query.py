"""Query processing — Algorithm 1.

Given ``(s, t, alpha)``: if ``X(s)``/``X(t)`` are in ancestor-descendant
relation the answer is the best path of one stored label entry; otherwise
the smaller of the two Lemma-1 separators supplies the hoplinks, each
hoplink's two label entries are pruned with Algorithm 2 (independent) or
Proposition 5 (correlated), the surviving paths are concatenated pairwise,
and the global minimum ``F_p^{-1}(alpha)`` wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pathsummary import PathSummary, concatenate, trivial_path
from repro.core.pruning import LabelPathSet, prune_correlated, prune_pair
from repro.stats.zscores import z_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import NRPIndex

__all__ = ["QueryStats", "QueryResult", "answer_query"]


@dataclass
class QueryStats:
    """Counters behind Figures 8 and 9."""

    hoplinks: int = 0
    concatenations: int = 0
    label_lookups: int = 0
    candidate_paths: int = 0
    surviving_paths: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.hoplinks += other.hoplinks
        self.concatenations += other.concatenations
        self.label_lookups += other.label_lookups
        self.candidate_paths += other.candidate_paths
        self.surviving_paths += other.surviving_paths


@dataclass
class QueryResult:
    """An answered RSP query."""

    source: int
    target: int
    alpha: float
    value: float
    mu: float
    variance: float
    summary: PathSummary
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def path(self) -> list[int]:
        """The vertex sequence of the optimal path (reconstructed lazily)."""
        vertices = self.summary.vertices()
        if vertices and vertices[0] != self.source:
            vertices.reverse()
        return vertices


def _best_in_label(label_set: LabelPathSet, alpha: float) -> tuple[float, PathSummary]:
    z = z_value(alpha)
    best_value = math.inf
    best_path: PathSummary | None = None
    for p in label_set.paths:
        value = p.mu + z * p.sigma
        if value < best_value:
            best_value = value
            best_path = p
        elif z >= 0.0 and p.mu > best_value:
            break  # means are increasing; no later path can win for alpha >= 0.5
    if best_path is None:
        raise ValueError("empty label entry")
    return best_value, best_path


def answer_query(
    index: "NRPIndex",
    s: int,
    t: int,
    alpha: float,
    use_pruning: bool = True,
    stats: QueryStats | None = None,
) -> QueryResult:
    """Algorithm 1.  ``use_pruning=False`` is the Figure-9 ablation variant.

    Queries with ``alpha >= 0.5`` use the ``P^{>0.5}`` plane with the full
    Algorithm-2 / Proposition-5 pruning; ``alpha < 0.5`` uses the symmetric
    low plane (if built) without intersection pruning, whose statistics are
    only defined for the high side.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if index.z_max is not None:
        z = z_value(alpha) if alpha != 0.5 else 0.0
        if abs(z) > index.z_max:
            raise ValueError(
                f"alpha={alpha} needs |Z|={abs(z):.3f} > the index's practical "
                f"refine bound z_max={index.z_max} (labels would be "
                f"incomplete); build with a larger z_max or z_max=None"
            )
    if stats is None:
        stats = QueryStats()
    if s == t:
        return QueryResult(s, t, alpha, 0.0, 0.0, 0.0, trivial_path(s), stats)

    td = index.td
    plane = index.plane_for(alpha)
    labels = plane.labels
    if plane.direction == "low":
        use_pruning = False
    ancestor = td.lca(s, t)
    if ancestor == s or ancestor == t:
        deeper = t if ancestor == s else s
        other = s if ancestor == s else t
        label_set = labels[deeper][other]
        stats.label_lookups += 1
        stats.candidate_paths += len(label_set)
        stats.surviving_paths += len(label_set)
        value, best = _best_in_label(label_set, alpha)
        return QueryResult(s, t, alpha, value, best.mu, best.var, best, stats)

    separator_s, separator_t = td.separators(s, t)
    hoplinks = separator_s if len(separator_s) <= len(separator_t) else separator_t
    stats.hoplinks += len(hoplinks)

    z = z_value(alpha)
    cov = index.cov if index.correlated else None
    best_value = math.inf
    best_triplet: tuple[PathSummary, PathSummary, int] | None = None
    for h in hoplinks:
        set_sh = labels[s][h]
        set_ht = labels[t][h]
        stats.label_lookups += 2
        stats.candidate_paths += len(set_sh) + len(set_ht)
        if use_pruning:
            if index.correlated:
                idx_sh, idx_ht = prune_correlated(set_sh, set_ht, alpha)
            else:
                idx_sh, idx_ht = prune_pair(set_sh, set_ht, alpha)
        else:
            idx_sh = range(len(set_sh))
            idx_ht = range(len(set_ht))
        stats.surviving_paths += len(idx_sh) + len(idx_ht)
        stats.concatenations += len(idx_sh) * len(idx_ht)
        paths_sh = set_sh.paths
        paths_ht = set_ht.paths
        if cov is None:
            for i in idx_sh:
                p1 = paths_sh[i]
                for j in idx_ht:
                    p2 = paths_ht[j]
                    var = p1.var + p2.var
                    value = p1.mu + p2.mu + (z * math.sqrt(var) if var > 0.0 else 0.0)
                    if value < best_value:
                        best_value = value
                        best_triplet = (p1, p2, h)
        else:
            window = index.window
            for i in idx_sh:
                p1 = paths_sh[i]
                w1 = p1.window_at(h)
                for j in idx_ht:
                    p2 = paths_ht[j]
                    var = p1.var + p2.var + 2.0 * cov.cross_covariance(
                        w1, p2.window_at(h)
                    )
                    if var < 0.0:
                        var = 0.0
                    value = p1.mu + p2.mu + z * math.sqrt(var)
                    if value < best_value:
                        best_value = value
                        best_triplet = (p1, p2, h)
    if best_triplet is None:
        raise ValueError(f"no path between {s} and {t}: graph not connected?")
    p1, p2, h = best_triplet
    joined = concatenate(p1, p2, h, cov, index.window if cov is not None else 0)
    return QueryResult(s, t, alpha, best_value, joined.mu, joined.var, joined, stats)
