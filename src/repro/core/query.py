"""Query results, statistics, and the Algorithm-1 entry point.

The actual query machinery lives in :mod:`repro.core.engine`, which splits
Algorithm 1 into a planning stage (plane choice, LCA/ancestor shortcut,
separator selection, prune-index computation) and an execution stage (the
concatenation scan over columnar label views).  This module keeps the
result/statistics dataclasses and the long-standing :func:`answer_query`
convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pathsummary import PathSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import NRPIndex

__all__ = ["QueryStats", "QueryResult", "answer_query"]


@dataclass
class QueryStats:
    """Counters behind Figures 8 and 9."""

    hoplinks: int = 0
    concatenations: int = 0
    label_lookups: int = 0
    candidate_paths: int = 0
    surviving_paths: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.hoplinks += other.hoplinks
        self.concatenations += other.concatenations
        self.label_lookups += other.label_lookups
        self.candidate_paths += other.candidate_paths
        self.surviving_paths += other.surviving_paths


@dataclass
class QueryResult:
    """An answered RSP query."""

    source: int
    target: int
    alpha: float
    value: float
    mu: float
    variance: float
    summary: PathSummary
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def path(self) -> list[int]:
        """The vertex sequence of the optimal path (reconstructed lazily)."""
        vertices = self.summary.vertices()
        if vertices and vertices[0] != self.source:
            vertices.reverse()
        return vertices


def answer_query(
    index: "NRPIndex",
    s: int,
    t: int,
    alpha: float,
    use_pruning: bool = True,
    stats: QueryStats | None = None,
) -> QueryResult:
    """Algorithm 1 via the index's engine.

    ``use_pruning=False`` is the Figure-9 ablation variant.  Queries with
    ``alpha >= 0.5`` use the ``P^{>0.5}`` plane with the full Algorithm-2 /
    Proposition-5 pruning; ``alpha < 0.5`` uses the symmetric low plane (if
    built) without intersection pruning, whose statistics are only defined
    for the high side.
    """
    return index.engine.answer(s, t, alpha, use_pruning, stats)
