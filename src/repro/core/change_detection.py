"""Distribution-change detection (Section V).

The paper adopts the canonical approach of flagging statistically
significant deviations [34]: a travel-time sample falling outside
``mu +/- 2*sigma`` signals a change at the 5% significance level.  The
detector also keeps a sliding window of recent samples per edge so a refit
(Gaussian MLE) can be proposed when a change fires; feeding the refit to
:class:`repro.core.maintenance.IndexMaintainer` closes the loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.covariance import edge_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph

__all__ = ["ChangeDetector", "DetectedChange"]


@dataclass(frozen=True)
class DetectedChange:
    """A flagged edge together with its proposed refit distribution."""

    u: int
    v: int
    sample: float
    new_mu: float
    new_variance: float


class ChangeDetector:
    """Per-edge 2-sigma deviation detector with MLE refit proposals."""

    def __init__(
        self,
        graph: "StochasticGraph",
        *,
        num_sigmas: float = 2.0,
        window_size: int = 20,
        min_refit_samples: int = 5,
    ) -> None:
        if window_size < min_refit_samples:
            raise ValueError("window_size must be at least min_refit_samples")
        self._graph = graph
        self._num_sigmas = num_sigmas
        self._window_size = window_size
        self._min_refit = min_refit_samples
        self._recent: dict[tuple[int, int], deque[float]] = {}

    def observe(self, u: int, v: int, sample: float) -> DetectedChange | None:
        """Record one travel-time observation; return a change if flagged.

        A change fires when ``sample`` lies outside ``mu +/- k*sigma`` of the
        edge's *current* distribution.  The proposed refit is the MLE over
        the recent window (falling back to centring on the sample with the
        old variance when too few samples are buffered).
        """
        key = edge_key(u, v)
        window = self._recent.setdefault(key, deque(maxlen=self._window_size))
        window.append(sample)
        weight = self._graph.edge(u, v)
        spread = self._num_sigmas * weight.sigma
        if abs(sample - weight.mu) <= spread:
            return None
        if len(window) >= self._min_refit:
            n = len(window)
            mean = sum(window) / n
            variance = sum((x - mean) ** 2 for x in window) / n
        else:
            mean = sample
            variance = weight.variance
        return DetectedChange(u, v, sample, max(mean, 1e-9), variance)
