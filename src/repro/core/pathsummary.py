"""Path summaries: the atoms stored in edge-driven sets and labels.

A :class:`PathSummary` represents one u-v path by its travel-time moments
``(mu, variance)``, its endpoints, a provenance record that lets the full
vertex sequence be reconstructed lazily (queries return actual paths, but the
index never materialises vertex lists), and — in the correlated case — the
*head*/*tail* windows of Figure 6: the up-to-``K`` edges adjacent to each
endpoint, used to evaluate covariances during concatenation.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.stats.zscores import z_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore

__all__ = ["PathSummary", "concatenate", "trivial_path", "edge_path"]

EdgeKey = tuple[int, int]
_EMPTY: tuple[EdgeKey, ...] = ()


class PathSummary:
    """One path's moments, endpoints, edge windows, and provenance.

    ``prov`` is ``None`` for an empty (single-vertex) path, the string
    ``"edge"`` for a base edge, or a ``(left, right, via)`` triple whose
    halves are themselves summaries.
    """

    __slots__ = ("mu", "var", "a", "b", "win_a", "win_b", "num_edges", "prov")

    def __init__(
        self,
        mu: float,
        var: float,
        a: int,
        b: int,
        win_a: tuple[EdgeKey, ...] = _EMPTY,
        win_b: tuple[EdgeKey, ...] = _EMPTY,
        num_edges: int = 0,
        prov: str | tuple[PathSummary, PathSummary, int] | None = None,
    ) -> None:
        self.mu = mu
        self.var = var
        self.a = a
        self.b = b
        self.win_a = win_a
        self.win_b = win_b
        self.num_edges = num_edges
        self.prov = prov

    @property
    def sigma(self) -> float:
        return math.sqrt(self.var) if self.var > 0.0 else 0.0

    def reliability(self, alpha: float) -> float:
        """``F_p^{-1}(alpha) = mu + Z_alpha * sigma`` (Definition 3)."""
        if self.var <= 0.0:
            return self.mu
        return self.mu + z_value(alpha) * math.sqrt(self.var)

    def other_endpoint(self, v: int) -> int:
        if v == self.a:
            return self.b
        if v == self.b:
            return self.a
        raise ValueError(f"{v} is not an endpoint of this path ({self.a}, {self.b})")

    def window_at(self, v: int) -> tuple[EdgeKey, ...]:
        """The up-to-K edges adjacent to endpoint ``v``, ordered outward."""
        if v == self.a:
            return self.win_a
        if v == self.b:
            return self.win_b
        raise ValueError(f"{v} is not an endpoint of this path ({self.a}, {self.b})")

    # ------------------------------------------------------------------
    # Vertex recovery
    # ------------------------------------------------------------------
    def vertices(self) -> list[int]:
        """Reconstruct the vertex sequence from ``a`` to ``b``.

        Iterative (provenance trees can be deep for long paths).
        """
        out: list[int] = [self.a]
        # Stack of (summary, start_vertex): emit that summary's vertices
        # after `start_vertex`, oriented to begin at start_vertex.
        stack: list[tuple[PathSummary, int]] = [(self, self.a)]
        while stack:
            summary, start = stack.pop()
            prov = summary.prov
            if prov is None:
                continue
            if isinstance(prov, str):  # "edge"
                out.append(summary.other_endpoint(start))
                continue
            left, right, via = prov
            # `left` is the half holding endpoint `a` (see concatenate()):
            # walking from `a` means left first, from `b` means right first.
            if start == summary.a:
                first, second = left, right
            else:
                first, second = right, left
            # LIFO: push `second` below `first` so `first` expands first,
            # emitting start -> via, then second emits via -> end.
            stack.append((second, via))
            stack.append((first, start))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PathSummary(mu={self.mu:.3g}, var={self.var:.3g}, {self.a}-{self.b})"


def trivial_path(v: int) -> PathSummary:
    """The empty path at ``v`` (travel time identically zero)."""
    return PathSummary(0.0, 0.0, v, v)


def edge_path(u: int, v: int, mu: float, var: float, window: bool) -> PathSummary:
    """A single-edge path; ``window=True`` installs head/tail windows."""
    if window:
        key: tuple[EdgeKey, ...] = ((u, v) if u <= v else (v, u),)
        return PathSummary(mu, var, u, v, key, key, 1, "edge")
    return PathSummary(mu, var, u, v, _EMPTY, _EMPTY, 1, "edge")


def _merge_window(
    own: tuple[EdgeKey, ...],
    own_edges: int,
    other: tuple[EdgeKey, ...],
    window_size: int,
) -> tuple[EdgeKey, ...]:
    """Window at a far endpoint after concatenation.

    If the near path already has >= window_size edges its window is complete;
    otherwise extend it across the junction with the other path's edges.
    """
    if own_edges >= window_size:
        return own
    return own + other[: window_size - own_edges]


def concatenate(
    p1: PathSummary,
    p2: PathSummary,
    via: int,
    cov: "CovarianceStore | None" = None,
    window_size: int = 0,
) -> PathSummary:
    """``p1 (+) p2`` joined at the shared vertex ``via`` (Definition 2).

    For the independent case (``cov`` is None) moments simply add.  For the
    correlated case the cross-covariance between the two junction windows is
    added (``2 * cov(p1, p2)``), and the new endpoint windows are maintained
    as in Figure 6.  Negative resulting variances (possible only under the
    paper-faithful non-PSD sampling) are clamped to zero.
    """
    x = p1.other_endpoint(via)
    y = p2.other_endpoint(via)
    mu = p1.mu + p2.mu
    var = p1.var + p2.var
    if cov is None or window_size == 0:
        win_x = win_y = _EMPTY
    else:
        w1 = p1.window_at(via)
        w2 = p2.window_at(via)
        if w1 and w2:
            var += 2.0 * cov.cross_covariance(w1, w2)
            if var < 0.0:
                var = 0.0
        win_x = _merge_window(p1.window_at(x), p1.num_edges, w2, window_size)
        win_y = _merge_window(p2.window_at(y), p2.num_edges, w1, window_size)
    return PathSummary(
        mu,
        var,
        x,
        y,
        win_x,
        win_y,
        p1.num_edges + p2.num_edges,
        (p1, p2, via),
    )
