"""Query plans: a structured explanation of how Algorithm 1 answered.

``NRPIndex.explain(s, t, alpha)`` runs the query while recording the
decisions the paper's Figure 3 sketches — which case applied
(ancestor-descendant vs separator), the LCA, both candidate separators and
the chosen hoplink set, and per hoplink the label sizes before/after
Algorithm-2 pruning and the best concatenation found.  Useful for teaching,
debugging, and the test suite's white-box checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pruning import prune_correlated, prune_pair
from repro.stats.zscores import z_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import NRPIndex

__all__ = ["HoplinkStep", "QueryExplanation", "explain_query"]


@dataclass(frozen=True)
class HoplinkStep:
    """What happened at one hoplink ``h``."""

    hoplink: int
    sh_size: int
    ht_size: int
    sh_kept: int
    ht_kept: int
    best_value: float

    @property
    def concatenations(self) -> int:
        return self.sh_kept * self.ht_kept


@dataclass
class QueryExplanation:
    """The full plan of one query."""

    source: int
    target: int
    alpha: float
    case: str  # "trivial" | "ancestor" | "separator"
    lca: int | None = None
    separator_s: frozenset[int] = frozenset()
    separator_t: frozenset[int] = frozenset()
    hoplinks: tuple[int, ...] = ()
    steps: list[HoplinkStep] = field(default_factory=list)
    value: float = math.inf
    winning_hoplink: int | None = None

    def render(self) -> str:
        """Human-readable plan."""
        lines = [
            f"RSP({self.source} -> {self.target}, alpha={self.alpha:.3f})",
            f"case: {self.case}",
        ]
        if self.case == "separator":
            lines.append(
                f"LCA X({self.lca}); |H(s)|={len(self.separator_s)}, "
                f"|H(t)|={len(self.separator_t)} -> "
                f"{len(self.hoplinks)} hoplinks"
            )
            for step in self.steps:
                marker = "  <- winner" if step.hoplink == self.winning_hoplink else ""
                lines.append(
                    f"  h={step.hoplink}: |P_sh| {step.sh_size}->{step.sh_kept}, "
                    f"|P_ht| {step.ht_size}->{step.ht_kept}, "
                    f"{step.concatenations} concat, best {step.best_value:.4g}"
                    f"{marker}"
                )
        lines.append(f"answer: {self.value:.6g}")
        return "\n".join(lines)


def explain_query(
    index: "NRPIndex", s: int, t: int, alpha: float, use_pruning: bool = True
) -> QueryExplanation:
    """Run Algorithm 1 and record its plan.  Mirrors ``answer_query``."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if s == t:
        return QueryExplanation(s, t, alpha, "trivial", value=0.0)
    td = index.td
    plane = index.plane_for(alpha)
    labels = plane.labels
    if plane.direction == "low":
        use_pruning = False
    ancestor = td.lca(s, t)
    if ancestor in (s, t):
        deeper = t if ancestor == s else s
        other = s if ancestor == s else t
        label_set = labels[deeper][other]
        z = z_value(alpha)
        best = min(p.mu + z * p.sigma for p in label_set.paths)
        return QueryExplanation(s, t, alpha, "ancestor", lca=ancestor, value=best)

    separator_s, separator_t = td.separators(s, t)
    hoplinks = separator_s if len(separator_s) <= len(separator_t) else separator_t
    explanation = QueryExplanation(
        s,
        t,
        alpha,
        "separator",
        lca=ancestor,
        separator_s=frozenset(separator_s),
        separator_t=frozenset(separator_t),
        hoplinks=tuple(sorted(hoplinks)),
    )
    z = z_value(alpha)
    cov = index.cov if index.correlated else None
    for h in explanation.hoplinks:
        set_sh = labels[s][h]
        set_ht = labels[t][h]
        if use_pruning:
            if index.correlated:
                idx_sh, idx_ht = prune_correlated(set_sh, set_ht, alpha)
            else:
                idx_sh, idx_ht = prune_pair(set_sh, set_ht, alpha)
        else:
            idx_sh = list(range(len(set_sh)))
            idx_ht = list(range(len(set_ht)))
        best_here = math.inf
        for i in idx_sh:
            p1 = set_sh.paths[i]
            for j in idx_ht:
                p2 = set_ht.paths[j]
                var = p1.var + p2.var
                if cov is not None:
                    var += 2.0 * cov.cross_covariance(
                        p1.window_at(h), p2.window_at(h)
                    )
                    if var < 0.0:
                        var = 0.0
                value = p1.mu + p2.mu + (z * math.sqrt(var) if var > 0.0 else 0.0)
                if value < best_here:
                    best_here = value
        explanation.steps.append(
            HoplinkStep(h, len(set_sh), len(set_ht), len(idx_sh), len(idx_ht), best_here)
        )
        if best_here < explanation.value:
            explanation.value = best_here
            explanation.winning_hoplink = h
    return explanation
