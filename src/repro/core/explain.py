"""Query plans: a structured explanation of how Algorithm 1 answered.

``NRPIndex.explain(s, t, alpha)`` asks the engine for a plan (with
hoplinks in deterministic sorted order) and executes each hoplink scan
separately, recording the decisions the paper's Figure 3 sketches — which
case applied (ancestor-descendant vs separator), the LCA, both candidate
separators and the chosen hoplink set, and per hoplink the label sizes
before/after Algorithm-2 pruning and the best concatenation found.  Useful
for teaching, debugging, and the test suite's white-box checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import NRPIndex

__all__ = ["HoplinkStep", "QueryExplanation", "explain_query"]


@dataclass(frozen=True)
class HoplinkStep:
    """What happened at one hoplink ``h``."""

    hoplink: int
    sh_size: int
    ht_size: int
    sh_kept: int
    ht_kept: int
    best_value: float

    @property
    def concatenations(self) -> int:
        return self.sh_kept * self.ht_kept


@dataclass
class QueryExplanation:
    """The full plan of one query."""

    source: int
    target: int
    alpha: float
    case: str  # "trivial" | "ancestor" | "separator"
    lca: int | None = None
    separator_s: frozenset[int] = frozenset()
    separator_t: frozenset[int] = frozenset()
    hoplinks: tuple[int, ...] = ()
    steps: list[HoplinkStep] = field(default_factory=list)
    value: float = math.inf
    winning_hoplink: int | None = None

    def render(self) -> str:
        """Human-readable plan."""
        lines = [
            f"RSP({self.source} -> {self.target}, alpha={self.alpha:.3f})",
            f"case: {self.case}",
        ]
        if self.case == "separator":
            lines.append(
                f"LCA X({self.lca}); |H(s)|={len(self.separator_s)}, "
                f"|H(t)|={len(self.separator_t)} -> "
                f"{len(self.hoplinks)} hoplinks"
            )
            for step in self.steps:
                marker = "  <- winner" if step.hoplink == self.winning_hoplink else ""
                lines.append(
                    f"  h={step.hoplink}: |P_sh| {step.sh_size}->{step.sh_kept}, "
                    f"|P_ht| {step.ht_size}->{step.ht_kept}, "
                    f"{step.concatenations} concat, best {step.best_value:.4g}"
                    f"{marker}"
                )
        lines.append(f"answer: {self.value:.6g}")
        return "\n".join(lines)


def explain_query(
    index: "NRPIndex", s: int, t: int, alpha: float, use_pruning: bool = True
) -> QueryExplanation:
    """Run Algorithm 1's plan through the engine and record its decisions."""
    engine = index.engine
    if s == t:
        engine.plan(s, t, alpha, use_pruning)  # validates alpha / z_max
        return QueryExplanation(s, t, alpha, "trivial", value=0.0)
    plan = engine.plan(s, t, alpha, use_pruning, sort_hoplinks=True)

    if plan.case == "ancestor":
        label_set = plan.plane.labels[plan.deeper][plan.other]
        best, _ = engine.best_in_label(label_set, plan.z)
        return QueryExplanation(s, t, alpha, "ancestor", lca=plan.lca, value=best)

    explanation = QueryExplanation(
        s,
        t,
        alpha,
        "separator",
        lca=plan.lca,
        separator_s=plan.separator_s,
        separator_t=plan.separator_t,
        hoplinks=plan.hoplinks,
    )
    for task in plan.tasks:
        best_here, _, _ = engine.scan_hoplink(task, plan.z)
        explanation.steps.append(
            HoplinkStep(
                task.hoplink,
                len(task.set_sh),
                len(task.set_ht),
                len(task.idx_sh),
                len(task.idx_ht),
                best_here,
            )
        )
        if best_here < explanation.value:
            explanation.value = best_here
            explanation.winning_hoplink = task.hoplink
    return explanation
