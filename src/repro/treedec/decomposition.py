"""The rooted tree decomposition with LCA and separator support.

Definition 4 and Lemma 1 of the paper.  Bags come from vertex contraction
(:mod:`repro.treedec.ordering`); the tree parent of ``X(v)`` is ``X(u)``
where ``u`` is the earliest-contracted vertex in ``X(v) \\ {v}``.  Every
vertex in ``X(v) \\ {v}`` is then an ancestor of ``v`` — the property that
makes the hoplink labels of the NRP index well-defined.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.treedec.ordering import contract_in_order, min_degree_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph

__all__ = ["TreeDecomposition", "build_tree_decomposition"]


class TreeDecomposition:
    """Rooted tree of bags with O(1)-ish LCA and ancestor queries."""

    def __init__(self, order: Sequence[int], bags: dict[int, tuple[int, ...]]) -> None:
        self.order: tuple[int, ...] = tuple(order)
        self.position: dict[int, int] = {v: i for i, v in enumerate(order)}
        self.bags = bags
        self.parent: dict[int, int | None] = {}
        self.children: dict[int, list[int]] = {v: [] for v in order}
        roots: list[int] = []
        for v in order:
            bag = bags[v]
            if len(bag) > 1:
                parent = bag[1]  # earliest-contracted neighbour
                self.parent[v] = parent
                self.children[parent].append(v)
            else:
                self.parent[v] = None
                roots.append(v)
        if len(roots) != 1:
            raise ValueError(
                f"graph must be connected: tree decomposition has {len(roots)} roots"
            )
        self.root: int = roots[0]
        self._compute_depths()
        self._build_lifting()

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    def _compute_depths(self) -> None:
        self.depth: dict[int, int] = {self.root: 0}
        self.tin: dict[int, int] = {}
        self.tout: dict[int, int] = {}
        clock = 0
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                self.tout[v] = clock
                clock += 1
                continue
            self.tin[v] = clock
            clock += 1
            stack.append((v, True))
            for child in self.children[v]:
                self.depth[child] = self.depth[v] + 1
                stack.append((child, False))

    def _build_lifting(self) -> None:
        n = len(self.order)
        levels = max(1, n.bit_length())
        up: list[dict[int, int]] = [dict() for _ in range(levels)]
        for v in self.order:
            parent = self.parent[v]
            up[0][v] = v if parent is None else parent
        for k in range(1, levels):
            prev = up[k - 1]
            up[k] = {v: prev[prev[v]] for v in self.order}
        self._up = up

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def treewidth(self) -> int:
        """``max_v |X(v)| - 1`` (Table II reports ``omega = max |X(v)|``)."""
        return max(len(bag) for bag in self.bags.values()) - 1

    @property
    def max_bag_size(self) -> int:
        """The paper's ``omega``."""
        return max(len(bag) for bag in self.bags.values())

    @property
    def treeheight(self) -> int:
        """The paper's ``eta``: number of nodes on the longest root path."""
        return max(self.depth.values()) + 1

    def is_ancestor(self, u: int, v: int) -> bool:
        """True iff ``X(u)`` is an ancestor of ``X(v)`` (or ``u == v``)."""
        return self.tin[u] <= self.tin[v] and self.tout[v] <= self.tout[u]

    def ancestors(self, v: int) -> Iterator[int]:
        """Yield proper ancestors of ``v``, nearest first."""
        current = self.parent[v]
        while current is not None:
            yield current
            current = self.parent[current]

    def kth_ancestor(self, v: int, k: int) -> int:
        """The ancestor ``k`` levels above ``v`` (binary lifting)."""
        for bit, table in enumerate(self._up):
            if k & (1 << bit):
                v = table[v]
        return v

    def lca(self, u: int, v: int) -> int:
        """Least common ancestor of ``X(u)`` and ``X(v)``."""
        if self.is_ancestor(u, v):
            return u
        if self.is_ancestor(v, u):
            return v
        du, dv = self.depth[u], self.depth[v]
        if du > dv:
            u = self.kth_ancestor(u, du - dv)
        elif dv > du:
            v = self.kth_ancestor(v, dv - du)
        for table in reversed(self._up):
            if table[u] != table[v]:
                u, v = table[u], table[v]
        return self.parent[u]  # type: ignore[return-value]

    def child_towards(self, ancestor: int, v: int) -> int:
        """The child of ``ancestor`` on the branch containing ``v``.

        Lemma 1's ``c_s`` / ``c_t``.  Requires ``ancestor`` to be a proper
        ancestor of ``v``.
        """
        k = self.depth[v] - self.depth[ancestor] - 1
        if k < 0:
            raise ValueError(f"{ancestor} is not a proper ancestor of {v}")
        return self.kth_ancestor(v, k)

    def separators(self, s: int, t: int) -> tuple[set[int], set[int]]:
        """The two candidate separators ``H(s)`` and ``H(t)`` of Lemma 1.

        ``H(s) = X(c_s) \\ {c_s}`` and ``H(t) = X(c_t) \\ {c_t}`` where
        ``c_s``/``c_t`` are the LCA's children towards ``s`` and ``t``.
        Undefined (raises) when X(s)/X(t) are in ancestor-descendant
        relation — Algorithm 1 answers those queries from a single label.
        """
        ancestor = self.lca(s, t)
        if ancestor in (s, t):
            raise ValueError("separator undefined for ancestor-descendant queries")
        c_s = self.child_towards(ancestor, s)
        c_t = self.child_towards(ancestor, t)
        return set(self.bags[c_s][1:]), set(self.bags[c_t][1:])

    def subtree(self, r: int) -> Iterator[int]:
        """Yield the vertices of the subtree rooted at ``X(r)``, top-down."""
        stack = [r]
        while stack:
            v = stack.pop()
            yield v
            stack.extend(self.children[v])

    def top_down(self) -> Iterator[int]:
        """All vertices in a root-first order (parents before children)."""
        return self.subtree(self.root)


def build_tree_decomposition(
    graph: "StochasticGraph", order: Sequence[int] | None = None
) -> TreeDecomposition:
    """Build a tree decomposition, choosing a min-degree order if none given."""
    if order is None:
        order = min_degree_order(graph)
    bags = contract_in_order(graph, order)
    return TreeDecomposition(order, bags)
