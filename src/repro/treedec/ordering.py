"""Minimum-degree elimination ordering (Algorithm 6 of [26]).

Road networks have small treewidth, and the classic minimum-degree heuristic
recovers it well: repeatedly contract the vertex with the fewest remaining
neighbours, turning its neighbourhood into a clique.  The heap is lazy —
stale entries are skipped when popped — which keeps the loop simple and fast
enough for the network sizes this reproduction targets.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph

__all__ = ["min_degree_order", "contract_in_order"]


def min_degree_order(graph: "StochasticGraph") -> list[int]:
    """Return a full elimination order by the minimum-degree heuristic."""
    adj: dict[int, set[int]] = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    heap: list[tuple[int, int]] = [(len(nbrs), v) for v, nbrs in adj.items()]
    heapq.heapify(heap)
    eliminated: set[int] = set()
    order: list[int] = []
    while heap:
        degree, v = heapq.heappop(heap)
        if v in eliminated or degree != len(adj[v]):
            continue  # stale heap entry
        eliminated.add(v)
        order.append(v)
        nbrs = adj.pop(v)
        for u in nbrs:
            adj[u].discard(v)
        nbr_list = list(nbrs)
        for i, u in enumerate(nbr_list):
            for w in nbr_list[i + 1 :]:
                if w not in adj[u]:
                    adj[u].add(w)
                    adj[w].add(u)
        for u in nbr_list:
            heapq.heappush(heap, (len(adj[u]), u))
    return order


def contract_in_order(
    graph: "StochasticGraph", order: Sequence[int]
) -> dict[int, tuple[int, ...]]:
    """Contract vertices in the given order; return the bags ``X(v)``.

    ``X(v)`` contains ``v`` followed by its neighbours at contraction time,
    sorted by their position in ``order`` (so ``X(v)[1]`` — the
    earliest-contracted neighbour — is ``v``'s tree parent).
    """
    position = {v: i for i, v in enumerate(order)}
    if len(position) != len(order):
        raise ValueError("contraction order contains duplicates")
    adj: dict[int, set[int]] = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    if set(adj) != set(position):
        raise ValueError("contraction order must cover exactly the graph's vertices")
    bags: dict[int, tuple[int, ...]] = {}
    for v in order:
        nbrs = sorted(adj.pop(v), key=position.__getitem__)
        bags[v] = (v, *nbrs)
        for u in nbrs:
            adj[u].discard(v)
        for i, u in enumerate(nbrs):
            for w in nbrs[i + 1 :]:
                adj[u].add(w)
                adj[w].add(u)
    return bags
