"""Nested-dissection elimination ordering.

The contraction order determines the tree decomposition's height and bag
sizes, and through them NRP's label count and query-time hoplink sets.  The
paper uses the min-degree heuristic of [26]; nested dissection is the
classic alternative for road networks: recursively split the graph with a
small balanced separator, order each part first and the separator last, so
the tree height tracks the recursion depth (O(sqrt(n)) on planar-ish
networks) instead of min-degree's more erratic chains.

The separator heuristic here is geometry-free: a BFS level structure from a
pseudo-peripheral vertex is cut at the median level (a "level separator"),
which works well on grid-like road networks and needs no coordinates.
``benchmarks/bench_ablation_ordering.py`` compares the two orderings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.treedec.ordering import min_degree_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph

__all__ = ["nested_dissection_order"]

#: Below this size, min-degree on the fragment beats further dissection.
_BASE_CASE = 24


def _bfs_levels(
    adj: dict[int, set[int]], start: int, members: set[int]
) -> list[list[int]]:
    levels = [[start]]
    seen = {start}
    while True:
        nxt = []
        for v in levels[-1]:
            for w in adj[v]:
                if w in members and w not in seen:
                    seen.add(w)
                    nxt.append(w)
        if not nxt:
            return levels
        levels.append(nxt)


def _pseudo_peripheral(adj: dict[int, set[int]], members: set[int]) -> int:
    """Double-sweep: a vertex approximately maximising eccentricity."""
    start = next(iter(members))
    for _ in range(2):
        levels = _bfs_levels(adj, start, members)
        start = levels[-1][0]
    return start


def _level_separator(
    adj: dict[int, set[int]], members: set[int]
) -> tuple[set[int], list[set[int]]]:
    """Split ``members`` into (separator, remaining components)."""
    root = _pseudo_peripheral(adj, members)
    levels = _bfs_levels(adj, root, members)
    reached = {v for level in levels for v in level}
    stranded = members - reached  # disconnected fragments order first
    if len(levels) < 3:
        return set(reached), [stranded] if stranded else []
    separator = set(levels[len(levels) // 2])
    rest = reached - separator
    components: list[set[int]] = [stranded] if stranded else []
    unvisited = set(rest)
    while unvisited:
        seed = next(iter(unvisited))
        component = {seed}
        frontier = [seed]
        while frontier:
            nxt = []
            for v in frontier:
                for w in adj[v]:
                    if w in unvisited and w not in component:
                        component.add(w)
                        nxt.append(w)
            frontier = nxt
        unvisited -= component
        components.append(component)
    return separator, components


def _order_fragment_min_degree(
    adj: dict[int, set[int]], members: set[int]
) -> list[int]:
    """Min-degree order of an induced fragment (fill-in locally only)."""
    import heapq

    local: dict[int, set[int]] = {v: adj[v] & members for v in members}
    heap = [(len(nbrs), v) for v, nbrs in local.items()]
    heapq.heapify(heap)
    eliminated: set[int] = set()
    order: list[int] = []
    while heap:
        degree, v = heapq.heappop(heap)
        if v in eliminated or degree != len(local[v]):
            continue
        eliminated.add(v)
        order.append(v)
        nbrs = local.pop(v)
        for u in nbrs:
            local[u].discard(v)
        nbr_list = list(nbrs)
        for i, u in enumerate(nbr_list):
            for w in nbr_list[i + 1 :]:
                local[u].add(w)
                local[w].add(u)
        for u in nbr_list:
            heapq.heappush(heap, (len(local[u]), u))
    return order


def nested_dissection_order(graph: "StochasticGraph") -> list[int]:
    """A full elimination order by recursive level-separator dissection.

    Separator vertices are ordered *after* both parts (eliminated last, so
    they sit near the tree root), recursively; fragments below the base-case
    size fall back to local min-degree.
    """
    adj: dict[int, set[int]] = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    order: list[int] = []

    def dissect(members: set[int]) -> None:
        if len(members) <= _BASE_CASE:
            order.extend(_order_fragment_min_degree(adj, members))
            return
        separator, components = _level_separator(adj, members)
        if not components:  # could not split: fall back
            order.extend(_order_fragment_min_degree(adj, members))
            return
        for component in components:
            if component:
                dissect(component)
        order.extend(_order_fragment_min_degree(adj, separator))

    all_vertices = set(adj)
    if all_vertices:
        dissect(all_vertices)
    return order
