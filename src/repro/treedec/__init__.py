"""Tree decomposition substrate (Section II-B).

Builds the rooted tree of bags ``X(v)`` by contracting vertices in a
minimum-degree elimination order (Algorithm 6 of [26]), and supports the
separator machinery of Lemma 1: O(1) LCA queries, ancestor tests, and
"child of the LCA on the branch containing X(v)" lookups via binary lifting.
"""

from repro.treedec.decomposition import TreeDecomposition, build_tree_decomposition
from repro.treedec.nested_dissection import nested_dissection_order
from repro.treedec.ordering import min_degree_order

__all__ = [
    "TreeDecomposition",
    "build_tree_decomposition",
    "min_degree_order",
    "nested_dissection_order",
]
