"""TBS [16]: the state-of-the-art search baseline with a precomputed index.

The original TBS prunes a best-first stochastic search with travel-time
bounds from precomputed *reversed paths* toward the destination.  We
reproduce that behaviour (DESIGN.md substitution 3) with two exact hub
labellings built at indexing time — one over mean travel times, one over
minimum path variances.  At query time the label lookups provide, for every
frontier vertex ``v``, the exact remaining mean ``d_mu(v, t)`` and a lower
bound on the remaining variance ``d_var(v, t)``, which together bound the
best completion ``mu_p + d_mu + Z_alpha * sqrt(var_p + d_var)`` — the same
A*-with-reverse-bounds regime as TBS, with the same trade-off the paper
reports: a much larger and slower-to-build index than NRP's, queries faster
than the plain A* baselines but still orders of magnitude behind NRP.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.baselines.astar import SearchStats, stochastic_astar
from repro.baselines.hub_labels import HubLabeling

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["TBSIndex"]

# Size accounting: one hub-label entry is a (rank, dist) pair.
_BYTES_PER_HL_ENTRY = 20


class TBSIndex:
    """Precomputed reverse-bound index + bounded stochastic search."""

    def __init__(self, graph: "StochasticGraph") -> None:
        start = time.perf_counter()
        self.graph = graph
        # The mean labelling materialises the actual reversed paths (what
        # TBS stores and retrieves); the variance labelling provides the
        # remaining-variance lower bound.
        self.mean_labels = HubLabeling(graph, lambda w: w.mu, store_paths=True)
        self.variance_labels = HubLabeling(graph, lambda w: w.variance)
        self.construction_seconds = time.perf_counter() - start

    def query(
        self,
        source: int,
        target: int,
        alpha: float,
        cov: "CovarianceStore | None" = None,
        *,
        window: int = 4,
        stats: SearchStats | None = None,
    ) -> tuple[float, list[int]]:
        """Answer one RSP query; exact for the same regimes as SDRSP-A*."""
        mean_cache: dict[int, float] = {}
        var_cache: dict[int, float] = {}
        mean_labels = self.mean_labels
        variance_labels = self.variance_labels

        def mean_potential(v: int) -> float:
            d = mean_cache.get(v)
            if d is None:
                d = mean_labels.distance(v, target)
                mean_cache[v] = d
            return d

        def variance_bound(v: int) -> float:
            d = var_cache.get(v)
            if d is None:
                d = variance_labels.distance(v, target)
                var_cache[v] = d
            return d

        return stochastic_astar(
            self.graph,
            source,
            target,
            alpha,
            cov,
            window=window,
            use_mb=True,
            potentials=mean_potential,
            variance_bounds=variance_bound,
            stats=stats,
        )

    @property
    def num_entries(self) -> int:
        return self.mean_labels.num_entries + self.variance_labels.num_entries

    @property
    def estimated_bytes(self) -> int:
        """Index-size estimate for Table II (entries + stored paths)."""
        return (
            self.num_entries * _BYTES_PER_HL_ENTRY
            + self.mean_labels.num_stored_path_vertices * 8
        )
