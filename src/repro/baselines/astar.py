"""Label-correcting A* baselines: SDRSP-A* [7] and ERSP-A* [8].

Both expand partial paths from the source guided by exact mean-distance
potentials (a reverse Dijkstra per query — part of these baselines' query
cost), maintain non-dominated label sets per vertex, and prune with the best
answer found so far.  SDRSP-A* uses M-V dominance; ERSP-A* additionally
applies the M-B dominance of [19] at the query's confidence level.  In the
correlated case labels carry the last ``window`` edges so covariance
increments can be evaluated, and dominance is only applied between labels
sharing that tail (two labels with different tails interact differently with
future edges, so comparing them would be unsound).

Soundness notes: the priority ``mu_p + h(v)`` lower-bounds the final answer
value for any alpha >= 0.5 (``Z_alpha >= 0`` and variances are clamped
non-negative), so the heap is monotone and the search may stop once the
minimum priority reaches the incumbent.  M-B dominance is exact for
independent weights and for non-negatively correlated weights; with negative
correlations it is the heuristic of [8] (see tests).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.baselines.dijkstra import dijkstra
from repro.stats.zscores import z_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["SearchStats", "stochastic_astar", "sdrsp_query", "ersp_query"]

EdgeKey = tuple[int, int]


@dataclass
class SearchStats:
    """Search-effort counters shared by all A*-family baselines."""

    labels_generated: int = 0
    labels_expanded: int = 0
    pruned_dominated: int = 0
    pruned_bound: int = 0

    def merge(self, other: "SearchStats") -> None:
        self.labels_generated += other.labels_generated
        self.labels_expanded += other.labels_expanded
        self.pruned_dominated += other.pruned_dominated
        self.pruned_bound += other.pruned_bound


class _Label:
    __slots__ = ("mu", "var", "vertex", "tail", "parent")

    def __init__(self, mu, var, vertex, tail, parent):
        self.mu = mu
        self.var = var
        self.vertex = vertex
        self.tail = tail
        self.parent = parent

    def path(self) -> list[int]:
        out = []
        label: _Label | None = self
        while label is not None:
            out.append(label.vertex)
            label = label.parent
        out.reverse()
        return out


def _dominated(bucket: list[tuple[float, float]], mu: float, var: float,
               z_mb: float | None) -> bool:
    for other_mu, other_var in bucket:
        if other_mu <= mu and other_var <= var:
            return True
        if z_mb is not None and other_mu <= mu:
            if other_mu + z_mb * math.sqrt(other_var) <= mu + z_mb * math.sqrt(var):
                return True
    return False


def stochastic_astar(
    graph: "StochasticGraph",
    source: int,
    target: int,
    alpha: float,
    cov: "CovarianceStore | None" = None,
    *,
    window: int = 4,
    use_mb: bool = False,
    potentials: "dict[int, float] | Callable[[int], float] | None" = None,
    variance_bounds: "dict[int, float] | Callable[[int], float] | None" = None,
    stats: SearchStats | None = None,
    max_labels: int = 2_000_000,
) -> tuple[float, list[int]]:
    """The shared engine.  Returns ``(F^{-1}(alpha), vertex path)``.

    ``potentials`` are mean distances to ``target`` (computed here if absent);
    ``variance_bounds`` are minimum achievable remaining variances (only used
    in the independent case — with correlations future covariance can be
    negative, so no sound variance bound below zero exists).
    """
    if alpha < 0.5:
        raise ValueError("the search baselines assume alpha >= 0.5 (Z_alpha >= 0)")
    if stats is None:
        stats = SearchStats()
    z = z_value(alpha)
    correlated = cov is not None and not cov.is_empty()
    if potentials is None:
        dist, _ = dijkstra(graph, target)
        potential_fn = lambda v: dist.get(v, math.inf)  # noqa: E731
    elif callable(potentials):
        potential_fn = potentials
    else:
        potential_fn = lambda v: potentials.get(v, math.inf)  # noqa: E731
    if variance_bounds is None or correlated:
        # With correlations, future covariance terms can be negative, so no
        # sound positive lower bound on the remaining variance exists.
        var_bound_fn = None
    elif callable(variance_bounds):
        var_bound_fn = variance_bounds
    else:
        var_bound_fn = lambda v: variance_bounds.get(v, 0.0)  # noqa: E731
    z_mb = z if use_mb else None

    if source == target:
        return 0.0, [source]
    h_source = potential_fn(source)
    if math.isinf(h_source):
        raise ValueError(f"no path from {source} to {target}")

    start = _Label(0.0, 0.0, source, (), None)
    counter = 0
    heap: list[tuple[float, int, _Label]] = [(h_source, 0, start)]
    buckets: dict[tuple[int, tuple[EdgeKey, ...]], list[tuple[float, float]]] = {
        (source, ()): [(0.0, 0.0)]
    }
    best_value = math.inf
    best_label: _Label | None = None
    while heap:
        priority, _, label = heapq.heappop(heap)
        if priority >= best_value:
            break  # monotone heap: nothing left can improve the incumbent
        stats.labels_expanded += 1
        v = label.vertex
        if v == target:
            value = label.mu + (z * math.sqrt(label.var) if label.var > 0.0 else 0.0)
            if value < best_value:
                best_value = value
                best_label = label
            continue
        for w, edge in graph.neighbor_items(v):
            h = potential_fn(w)
            if math.isinf(h):
                continue
            mu = label.mu + edge.mu
            var = label.var + edge.variance
            if correlated:
                key: EdgeKey = (v, w) if v <= w else (w, v)
                increment = 0.0
                partners = cov.correlated_partners(key)
                if partners:
                    for f in label.tail:
                        increment += partners.get(f, 0.0)
                var += 2.0 * increment
                if var < 0.0:
                    var = 0.0
                tail = (label.tail + (key,))[-window:] if window else ()
            else:
                tail = ()
            # Incumbent bound: optimistic completion of this label.
            bound = mu + h
            if var_bound_fn is not None:
                optimistic = var + var_bound_fn(w)
                if optimistic > 0.0:
                    bound += z * math.sqrt(optimistic)
            if bound >= best_value:
                stats.pruned_bound += 1
                continue
            bucket = buckets.setdefault((w, tail), [])
            if _dominated(bucket, mu, var, z_mb):
                stats.pruned_dominated += 1
                continue
            bucket[:] = [(m, s2) for (m, s2) in bucket if not (mu <= m and var <= s2)]
            bucket.append((mu, var))
            counter += 1
            stats.labels_generated += 1
            if stats.labels_generated > max_labels:
                raise RuntimeError(f"label explosion (> {max_labels}); aborting")
            heapq.heappush(heap, (mu + h, counter, _Label(mu, var, w, tail, label)))
    if best_label is None:
        raise ValueError(f"no path from {source} to {target}")
    return best_value, best_label.path()


def sdrsp_query(
    graph: "StochasticGraph",
    source: int,
    target: int,
    alpha: float,
    cov: "CovarianceStore | None" = None,
    *,
    window: int = 4,
    stats: SearchStats | None = None,
) -> tuple[float, list[int]]:
    """SDRSP-A* [7]: label-correcting A* with M-V dominance."""
    return stochastic_astar(
        graph, source, target, alpha, cov, window=window, use_mb=False, stats=stats
    )


def ersp_query(
    graph: "StochasticGraph",
    source: int,
    target: int,
    alpha: float,
    cov: "CovarianceStore | None" = None,
    *,
    window: int = 4,
    stats: SearchStats | None = None,
) -> tuple[float, list[int]]:
    """ERSP-A* [8]: SDRSP-A* plus the M-B dominance of [19]."""
    return stochastic_astar(
        graph, source, target, alpha, cov, window=window, use_mb=True, stats=stats
    )
