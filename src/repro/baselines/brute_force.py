"""Exact RSP by exhaustive enumeration of simple paths.

The test suite's ground truth.  For alpha > 0.5 in the independent case the
optimal path is always simple (a detour adds both mean and variance), and
the correlated property tests restrict to non-negative correlations where
the same holds (see DESIGN.md Section 7), so enumerating simple paths is
exact there.  Only usable on small graphs — the enumeration guards against
blow-ups with an explicit cap.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

from repro.stats.zscores import z_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["enumerate_simple_paths", "exact_rsp", "exact_non_dominated"]


def enumerate_simple_paths(
    graph: "StochasticGraph",
    source: int,
    target: int,
    *,
    max_paths: int = 2_000_000,
) -> Iterator[list[int]]:
    """Yield every simple source-target path (DFS)."""
    count = 0
    stack: list[tuple[int, list[int], set[int]]] = [(source, [source], {source})]
    while stack:
        v, path, visited = stack.pop()
        if v == target:
            count += 1
            if count > max_paths:
                raise RuntimeError(f"more than {max_paths} simple paths; graph too big")
            yield path
            continue
        for w in graph.neighbors(v):
            if w not in visited:
                stack.append((w, path + [w], visited | {w}))


def _path_moments(
    graph: "StochasticGraph", cov: "CovarianceStore | None", path: list[int]
) -> tuple[float, float]:
    mu = 0.0
    for i in range(len(path) - 1):
        mu += graph.edge(path[i], path[i + 1]).mu
    if cov is not None and not cov.is_empty():
        var = cov.path_variance(graph, path)
    else:
        var = sum(
            graph.edge(path[i], path[i + 1]).variance for i in range(len(path) - 1)
        )
    return mu, var


def exact_rsp(
    graph: "StochasticGraph",
    source: int,
    target: int,
    alpha: float,
    cov: "CovarianceStore | None" = None,
    *,
    max_paths: int = 2_000_000,
) -> tuple[float, list[int]]:
    """The exact optimal ``F^{-1}(alpha)`` value and path over simple paths."""
    z = z_value(alpha)
    best_value = math.inf
    best_path: list[int] | None = None
    for path in enumerate_simple_paths(graph, source, target, max_paths=max_paths):
        mu, var = _path_moments(graph, cov, path)
        value = mu + z * math.sqrt(var) if var > 0.0 else mu
        if value < best_value:
            best_value = value
            best_path = path
    if best_path is None:
        raise ValueError(f"no path from {source} to {target}")
    return best_value, best_path


def exact_non_dominated(
    graph: "StochasticGraph",
    source: int,
    target: int,
    *,
    max_paths: int = 2_000_000,
) -> list[tuple[float, float]]:
    """All Pareto-optimal ``(mu, variance)`` pairs over simple s-t paths.

    The exact counterpart of the strict M-V refine (Proposition 1 with
    ``z_max = None``): sorted by increasing mean, strictly decreasing
    variance, duplicates collapsed.
    """
    moments = sorted(
        _path_moments(graph, None, path)
        for path in enumerate_simple_paths(graph, source, target, max_paths=max_paths)
    )
    kept: list[tuple[float, float]] = []
    best_var = math.inf
    for mu, var in moments:
        if var < best_var:
            kept.append((mu, var))
            best_var = var
    return kept
