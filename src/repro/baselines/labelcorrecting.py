"""Plain label-correcting RSP search (the related-work "early solutions").

Section VII-A: before the A*-guided algorithms, RSP was solved by
label-correcting searches from the source that maintain a non-dominated
label set per vertex ([20], [41]).  This baseline is exactly SDRSP-A*
minus the goal-directed potentials (``h = 0``): same M-V dominance, same
incumbent pruning, but the search front expands isotropically, which is
why the A* variants beat it — a gap our benchmark suite can quantify.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.astar import SearchStats, stochastic_astar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["label_correcting_query"]


def label_correcting_query(
    graph: "StochasticGraph",
    source: int,
    target: int,
    alpha: float,
    cov: "CovarianceStore | None" = None,
    *,
    window: int = 4,
    stats: SearchStats | None = None,
) -> tuple[float, list[int]]:
    """Label-correcting RSP search without A* guidance ([20], [41])."""
    return stochastic_astar(
        graph,
        source,
        target,
        alpha,
        cov,
        window=window,
        use_mb=False,
        potentials=lambda v: 0.0,
        stats=stats,
    )
