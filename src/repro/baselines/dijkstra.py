"""Deterministic shortest paths on mean travel times.

This is both the paper's alpha = 0.5 special case (the RSP objective
degenerates to the mean) and the substrate for everything else: A*
potentials for the search baselines, distance bands for the Q1-Q5 workloads,
the double-sweep diameter estimate of Table I, and SMOGA's seed paths.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Callable, Iterable

from repro.resilience.degraded import mean_shortest_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph
    from repro.stats.normal import Normal

__all__ = [
    "dijkstra",
    "shortest_mean_path",
    "mean_distance",
    "approximate_diameter",
    "farthest_vertex",
]


def dijkstra(
    graph: "StochasticGraph",
    source: int,
    *,
    target: int | None = None,
    weight: Callable[["Normal"], float] | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest distances with parent pointers.

    ``weight`` maps an edge distribution to a scalar (default: the mean);
    passing ``lambda w: w.variance`` yields minimum-variance distances (used
    by the TBS bounds).  Stops early when ``target`` is settled.
    """
    if weight is None:
        weight = lambda w: w.mu  # noqa: E731 - tight inner loop
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == target:
            break
        for w, edge in graph.neighbor_items(v):
            if w in settled:
                continue
            nd = d + weight(edge)
            if nd < dist.get(w, math.inf):
                dist[w] = nd
                parent[w] = v
                heapq.heappush(heap, (nd, w))
    return dist, parent


def shortest_mean_path(
    graph: "StochasticGraph", source: int, target: int
) -> tuple[float, list[int]]:
    """Minimum-mean path and its mean travel time.

    Delegates to :func:`repro.resilience.degraded.mean_shortest_path` —
    the same routine serves as the engine's degraded-mode fallback, so
    there is exactly one mean-Dijkstra in the codebase (a regression test
    pins the two entry points to identical answers).
    """
    return mean_shortest_path(graph, source, target)


def mean_distance(graph: "StochasticGraph", source: int) -> dict[int, float]:
    """All mean distances from ``source`` (the A* potential table)."""
    dist, _ = dijkstra(graph, source)
    return dist


def farthest_vertex(graph: "StochasticGraph", source: int) -> tuple[int, float]:
    dist, _ = dijkstra(graph, source)
    v = max(dist, key=dist.__getitem__)
    return v, dist[v]


def approximate_diameter(
    graph: "StochasticGraph", seeds: Iterable[int] | None = None
) -> float:
    """Double-sweep estimate of ``d_max`` (Table I's last column).

    From each seed, find the farthest vertex, then sweep again from there;
    the largest eccentricity found is a (tight, for road networks) lower
    bound on the diameter of the mean-weighted graph.
    """
    if seeds is None:
        seeds = [next(iter(graph.vertices()))]
    best = 0.0
    for seed in seeds:
        far, _ = farthest_vertex(graph, seed)
        _, ecc = farthest_vertex(graph, far)
        best = max(best, ecc)
    return best
