"""Baseline RSP algorithms compared against NRP in Section VI.

- :mod:`dijkstra` — deterministic shortest paths on means (substrate: A*
  potentials, workload generation, diameter estimation).
- :mod:`brute_force` — exact enumeration over simple paths; ground truth
  for the test suite.
- :mod:`astar` — shared label-correcting A* engine; :func:`sdrsp_query`
  (M-V dominance, [7]) and :func:`ersp_query` (adds M-B dominance, [8])
  are thin configurations of it.
- :mod:`hub_labels` — pruned 2-hop hub labelling on means and variances,
  the precomputed reverse-bound index behind our TBS re-implementation.
- :mod:`tbs` — the state-of-the-art search baseline [16]: A* with exact
  mean potentials and variance lower bounds from the hub-label index.
- :mod:`smoga` — the simulation-based multi-objective genetic algorithm
  [17] (population 10, 20 rounds by default, as in the paper).
"""

from repro.baselines.astar import ersp_query, sdrsp_query
from repro.baselines.brute_force import enumerate_simple_paths, exact_rsp
from repro.baselines.dijkstra import (
    approximate_diameter,
    dijkstra,
    shortest_mean_path,
)
from repro.baselines.hub_labels import HubLabeling
from repro.baselines.smoga import smoga_query
from repro.baselines.tbs import TBSIndex

__all__ = [
    "dijkstra",
    "shortest_mean_path",
    "approximate_diameter",
    "enumerate_simple_paths",
    "exact_rsp",
    "sdrsp_query",
    "ersp_query",
    "HubLabeling",
    "TBSIndex",
    "smoga_query",
]
