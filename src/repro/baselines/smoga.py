"""SMOGA [17]: the simulation-based genetic RSP baseline.

A population of candidate s-t paths is evolved for a fixed number of rounds:
crossover swaps suffixes at a shared intermediate vertex, mutation reroutes
a random subsegment through a weight-jittered Dijkstra, and selection keeps
the fittest (smallest ``F^{-1}(alpha)``) individuals.  As in the paper we use
population size 10 and 20 rounds.  SMOGA is a heuristic: it may return a
suboptimal path, and its runtime is insensitive to the query's distance,
alpha, CV, and K — exactly the flat curves of Figure 7.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING

from repro.baselines.dijkstra import dijkstra
from repro.stats.zscores import z_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["smoga_query"]


def _jittered_path(
    graph: "StochasticGraph", source: int, target: int, rng: random.Random, spread: float
) -> list[int] | None:
    """Dijkstra under multiplicatively jittered means (diversity generator)."""
    import heapq

    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for w, edge in graph.neighbor_items(v):
            if w in settled:
                continue
            nd = d + edge.mu * rng.uniform(1.0 - spread, 1.0 + spread)
            if nd < dist.get(w, math.inf):
                dist[w] = nd
                parent[w] = v
                heapq.heappush(heap, (nd, w))
    return None


def _remove_cycles(path: list[int]) -> list[int]:
    seen: dict[int, int] = {}
    out: list[int] = []
    for v in path:
        if v in seen:
            del out[seen[v] + 1 :]
            for u in list(seen):
                if seen[u] > seen[v]:
                    del seen[u]
        else:
            seen[v] = len(out)
            out.append(v)
    return out


def _fitness(
    graph: "StochasticGraph",
    cov: "CovarianceStore | None",
    path: list[int],
    z: float,
) -> float:
    mu = 0.0
    var = 0.0
    for i in range(len(path) - 1):
        edge = graph.edge(path[i], path[i + 1])
        mu += edge.mu
        var += edge.variance
    if cov is not None and not cov.is_empty():
        var = cov.path_variance(graph, path)
        if var < 0.0:
            var = 0.0
    return mu + z * math.sqrt(var) if var > 0.0 else mu


def _crossover(p1: list[int], p2: list[int], rng: random.Random) -> list[int] | None:
    interior1 = {v: i for i, v in enumerate(p1[1:-1], start=1)}
    common = [(interior1[v], j) for j, v in enumerate(p2[1:-1], start=1) if v in interior1]
    if not common:
        return None
    i, j = common[rng.randrange(len(common))]
    return _remove_cycles(p1[: i + 1] + p2[j + 1 :])


def _mutate(
    graph: "StochasticGraph", path: list[int], rng: random.Random, spread: float
) -> list[int] | None:
    if len(path) < 3:
        return None
    i = rng.randrange(len(path) - 1)
    j = rng.randrange(i + 1, len(path))
    detour = _jittered_path(graph, path[i], path[j], rng, spread)
    if detour is None:
        return None
    return _remove_cycles(path[: i] + detour + path[j + 1 :])


def smoga_query(
    graph: "StochasticGraph",
    source: int,
    target: int,
    alpha: float,
    cov: "CovarianceStore | None" = None,
    *,
    population_size: int = 10,
    rounds: int = 20,
    jitter: float = 0.5,
    seed: int = 0,
) -> tuple[float, list[int]]:
    """One SMOGA query; returns the best ``(F^{-1}(alpha), path)`` found."""
    rng = random.Random(seed)
    z = z_value(alpha)
    if source == target:
        return 0.0, [source]
    population: list[list[int]] = []
    baseline, parent = dijkstra(graph, source, target=target)
    if target not in baseline:
        raise ValueError(f"no path from {source} to {target}")
    first = [target]
    while first[-1] != source:
        first.append(parent[first[-1]])
    first.reverse()
    population.append(first)
    while len(population) < population_size:
        candidate = _jittered_path(graph, source, target, rng, jitter)
        if candidate is not None:
            population.append(candidate)

    def keyed(paths: list[list[int]]) -> list[tuple[float, list[int]]]:
        return sorted(
            ((_fitness(graph, cov, p, z), p) for p in paths), key=lambda t: t[0]
        )

    scored = keyed(population)
    for _ in range(rounds):
        offspring: list[list[int]] = []
        for _ in range(population_size):
            if rng.random() < 0.5 and len(scored) >= 2:
                a = scored[rng.randrange(len(scored))][1]
                b = scored[rng.randrange(len(scored))][1]
                child = _crossover(a, b, rng)
            else:
                child = _mutate(graph, scored[rng.randrange(len(scored))][1], rng, jitter)
            if child is not None:
                offspring.append(child)
        merged = keyed([p for _, p in scored] + offspring)
        # Elitist selection with de-duplication by fitness value.
        scored = []
        seen: set[float] = set()
        for value, p in merged:
            if value in seen:
                continue
            seen.add(value)
            scored.append((value, p))
            if len(scored) == population_size:
                break
    return scored[0][0], scored[0][1]
