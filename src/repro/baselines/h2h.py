"""H2H: deterministic tree-decomposition distance labelling ([26]).

NRP generalises the H2H index of Ouyang et al. (SIGMOD 2018) from scalar
distances to non-dominated path sets.  This module implements the scalar
original over mean travel times: contraction builds min-plus shortcut
weights, labels store the exact mean distance from each vertex to every
tree ancestor, and a query scans the LCA bag — `O(treewidth)` lookups.

It serves two purposes here: a substrate-level baseline (NRP's alpha = 0.5
special case answered by the dedicated deterministic structure — see
``bench_ablation_h2h.py``) and an independent correctness oracle for the
tree-decomposition machinery.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.treedec.decomposition import TreeDecomposition, build_tree_decomposition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph

__all__ = ["H2HIndex"]


class H2HIndex:
    """Exact mean-distance queries via hierarchical 2-hop labels."""

    def __init__(
        self, graph: "StochasticGraph", order: Sequence[int] | None = None
    ) -> None:
        self.graph = graph
        self.td: TreeDecomposition = build_tree_decomposition(graph, order)
        self._build()

    def _build(self) -> None:
        td = self.td
        # Phase 1: min-plus contraction (scalar analogue of Algorithm 3).
        weights: dict[tuple[int, int], float] = {}
        for u, v, w in self.graph.edges():
            weights[(u, v) if u <= v else (v, u)] = w.mu

        def key(a: int, b: int) -> tuple[int, int]:
            return (a, b) if a <= b else (b, a)

        for v in td.order:
            neighbors = td.bags[v][1:]
            for i, u in enumerate(neighbors):
                w_uv = weights[key(u, v)]
                for w in neighbors[i + 1 :]:
                    through = w_uv + weights[key(v, w)]
                    k = key(u, w)
                    if through < weights.get(k, math.inf):
                        weights[k] = through

        # Phase 2: ancestor distance arrays, root first.
        self._labels: dict[int, dict[int, float]] = {}
        depth = td.depth
        for v in td.top_down():
            entry: dict[int, float] = {}
            bag_neighbors = td.bags[v][1:]
            for u in td.ancestors(v):
                best = math.inf
                for w in bag_neighbors:
                    base = weights[key(v, w)]
                    if w == u:
                        candidate = base
                    else:
                        deeper, shallower = (u, w) if depth[u] > depth[w] else (w, u)
                        candidate = base + self._labels[deeper][shallower]
                    if candidate < best:
                        best = candidate
                entry[u] = best
            self._labels[v] = entry

    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact shortest mean distance between two vertices."""
        if s == t:
            return 0.0
        td = self.td
        ancestor = td.lca(s, t)
        if ancestor == s:
            return self._labels[t][s]
        if ancestor == t:
            return self._labels[s][t]
        best = math.inf
        label_s = self._labels[s]
        label_t = self._labels[t]
        for w in td.bags[ancestor]:
            d_s = label_s[w] if w != s else 0.0
            d_t = label_t[w] if w != t else 0.0
            total = d_s + d_t
            if total < best:
                best = total
        return best

    @property
    def num_entries(self) -> int:
        return sum(len(entry) for entry in self._labels.values())
