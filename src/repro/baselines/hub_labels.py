"""Pruned 2-hop hub labelling (PLL) over arbitrary scalar edge weights.

This is the precomputed "reversed path" bound index behind our TBS
re-implementation (see DESIGN.md substitution 3): for every vertex ``v`` a
label ``L(v) = {(hub, dist)}`` such that the exact shortest distance between
any ``u`` and ``v`` is ``min over common hubs of d_u + d_v``.  Built with
the standard pruned-Dijkstra sweep in descending degree order; exact on
connected graphs.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph
    from repro.stats.normal import Normal

__all__ = ["HubLabeling"]


class HubLabeling:
    """Exact 2-hop labels for one scalarisation of the edge weights.

    Parameters
    ----------
    weight:
        Maps an edge distribution to the scalar to minimise; the TBS index
        builds one labelling on means and one on variances.
    order:
        Hub processing order (most important first); defaults to descending
        degree, a strong heuristic on road networks.
    """

    def __init__(
        self,
        graph: "StochasticGraph",
        weight: Callable[["Normal"], float] | None = None,
        order: Sequence[int] | None = None,
        store_paths: bool = False,
    ) -> None:
        if weight is None:
            weight = lambda w: w.mu  # noqa: E731 - hot loop
        if order is None:
            order = sorted(graph.vertices(), key=graph.degree, reverse=True)
        self._rank = {v: i for i, v in enumerate(order)}
        self.store_paths = store_paths
        # Label of v: parallel (hub_rank, dist) lists kept sorted by rank so
        # two labels can be intersected with a linear merge.  With
        # ``store_paths`` each entry additionally materialises the vertex
        # sequence of the hub-to-v path — the "reversed paths" that the TBS
        # index of [16] precomputes (and the reason its index dwarfs NRP's).
        self._hubs: dict[int, list[int]] = {v: [] for v in graph.vertices()}
        self._dists: dict[int, list[float]] = {v: [] for v in graph.vertices()}
        self._paths: dict[int, list[tuple[int, ...]]] = (
            {v: [] for v in graph.vertices()} if store_paths else {}
        )
        for hub in order:
            self._pruned_dijkstra(graph, hub, weight)

    def _pruned_dijkstra(
        self, graph: "StochasticGraph", hub: int, weight: Callable[["Normal"], float]
    ) -> None:
        hub_rank = self._rank[hub]
        dist: dict[int, float] = {hub: 0.0}
        parent: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, hub)]
        settled: set[int] = set()
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled.add(v)
            if self.distance(hub, v) <= d:
                continue  # already covered by higher-ranked hubs: prune
            self._hubs[v].append(hub_rank)
            self._dists[v].append(d)
            if self.store_paths:
                reversed_path = [v]
                while reversed_path[-1] != hub:
                    reversed_path.append(parent[reversed_path[-1]])
                self._paths[v].append(tuple(reversed_path))
            for w, edge in graph.neighbor_items(v):
                if w in settled:
                    continue
                nd = d + weight(edge)
                if nd < dist.get(w, math.inf):
                    dist[w] = nd
                    parent[w] = v
                    heapq.heappush(heap, (nd, w))

    def distance(self, u: int, v: int) -> float:
        """Exact shortest scalar distance (``inf`` if disconnected)."""
        hu, hv = self._hubs[u], self._hubs[v]
        du, dv = self._dists[u], self._dists[v]
        best = math.inf
        i = j = 0
        nu, nv = len(hu), len(hv)
        while i < nu and j < nv:
            ru, rv = hu[i], hv[j]
            if ru == rv:
                total = du[i] + dv[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif ru < rv:
                i += 1
            else:
                j += 1
        return best

    def reversed_path(self, hub: int, v: int) -> tuple[int, ...] | None:
        """The stored hub-to-``v`` path (``store_paths`` only)."""
        if not self.store_paths:
            raise ValueError("labelling built without store_paths")
        hub_rank = self._rank[hub]
        for i, rank in enumerate(self._hubs[v]):
            if rank == hub_rank:
                return self._paths[v][i]
        return None

    @property
    def num_entries(self) -> int:
        """Total label entries — the index-size metric of Table II."""
        return sum(len(hubs) for hubs in self._hubs.values())

    @property
    def num_stored_path_vertices(self) -> int:
        """Total vertices across stored reversed paths (0 if not stored)."""
        if not self.store_paths:
            return 0
        return sum(len(p) for paths in self._paths.values() for p in paths)

    def average_label_size(self) -> float:
        return self.num_entries / max(1, len(self._hubs))
