"""Empirical reliability experiment (beyond the paper's evaluation).

For a workload of answered queries, Monte-Carlo-simulate each returned
path's travel time and compare the *achieved* on-time probability against
the requested alpha.  This is the end-to-end guarantee the whole system
exists to provide; the paper validates it qualitatively in the Figure-12
case study, and here it becomes a measurable experiment
(``bench_reliability_check.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.index import NRPIndex
from repro.experiments.workloads import Query
from repro.validation.montecarlo import estimate_reliability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["ReliabilitySweep", "reliability_sweep"]


@dataclass(frozen=True)
class ReliabilitySweep:
    """Aggregate calibration of achieved vs requested reliability."""

    queries: int
    trials_per_query: int
    mean_requested: float
    mean_achieved: float
    worst_shortfall: float
    within_tolerance: int

    @property
    def calibration_gap(self) -> float:
        """Achieved minus requested, averaged (positive = conservative)."""
        return self.mean_achieved - self.mean_requested


def reliability_sweep(
    graph: "StochasticGraph",
    index: NRPIndex,
    queries: list[Query],
    cov: "CovarianceStore | None" = None,
    *,
    trials: int = 4000,
    tolerance: float = 0.03,
    seed: int = 0,
) -> ReliabilitySweep:
    """Answer every query, simulate its path, and aggregate calibration."""
    if not queries:
        raise ValueError("empty workload")
    achieved: list[float] = []
    requested: list[float] = []
    worst = 0.0
    ok = 0
    for i, q in enumerate(queries):
        result = index.query(q.source, q.target, q.alpha)
        estimate = estimate_reliability(
            graph, result.path, result.value, cov, trials=trials, seed=seed + i
        )
        requested.append(q.alpha)
        achieved.append(estimate.estimate)
        shortfall = max(0.0, q.alpha - estimate.estimate)
        worst = max(worst, shortfall)
        if shortfall <= tolerance:
            ok += 1
    n = len(queries)
    return ReliabilitySweep(
        queries=n,
        trials_per_query=trials,
        mean_requested=sum(requested) / n,
        mean_achieved=sum(achieved) / n,
        worst_shortfall=worst,
        within_tolerance=ok,
    )
