"""Uniform driver around NRP and the four baselines.

:class:`AlgorithmSuite` builds whatever indexes a configuration needs once
(NRP, TBS) and exposes every algorithm as ``fn(Query) -> value`` so the
figure/table runners can sweep workloads uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.baselines.astar import ersp_query, sdrsp_query
from repro.baselines.smoga import smoga_query
from repro.baselines.tbs import TBSIndex
from repro.core.index import NRPIndex
from repro.core.query import QueryStats
from repro.experiments.workloads import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.covariance import CovarianceStore
    from repro.network.graph import StochasticGraph

__all__ = ["AlgorithmSuite", "run_workload", "ALGORITHM_ORDER"]

#: Paper ordering: fastest-claimed first.
ALGORITHM_ORDER = ("NRP", "TBS", "ERSP-A*", "SDRSP-A*", "SMOGA")


@dataclass
class WorkloadResult:
    """Timing (and values, for cross-validation) of one algorithm sweep."""

    algorithm: str
    seconds: float
    values: list[float] = field(default_factory=list)

    @property
    def ms_per_query(self) -> float:
        return 1000.0 * self.seconds / max(1, len(self.values))


class AlgorithmSuite:
    """All five RSP algorithms over one network configuration."""

    def __init__(
        self,
        graph: "StochasticGraph",
        cov: "CovarianceStore | None" = None,
        *,
        window: int = 4,
        algorithms: tuple[str, ...] = ALGORITHM_ORDER,
        smoga_rounds: int = 20,
    ) -> None:
        self.graph = graph
        self.cov = cov
        self.window = window
        self.nrp: NRPIndex | None = None
        self.tbs: TBSIndex | None = None
        if "NRP" in algorithms:
            self.nrp = NRPIndex(graph, cov, window=window)
        if "TBS" in algorithms:
            self.tbs = TBSIndex(graph)
        self._smoga_rounds = smoga_rounds
        self.nrp_stats = QueryStats()
        self._fns: dict[str, Callable[[Query], float]] = {}
        for name in algorithms:
            self._fns[name] = self._make(name)

    def _make(self, name: str) -> Callable[[Query], float]:
        graph, cov, window = self.graph, self.cov, self.window
        if name == "NRP":
            index = self.nrp
            stats = self.nrp_stats

            def run(q: Query) -> float:
                return index.query(q.source, q.target, q.alpha, stats=stats).value

        elif name == "TBS":
            tbs = self.tbs

            def run(q: Query) -> float:
                return tbs.query(q.source, q.target, q.alpha, cov, window=window)[0]

        elif name == "ERSP-A*":

            def run(q: Query) -> float:
                return ersp_query(graph, q.source, q.target, q.alpha, cov, window=window)[0]

        elif name == "SDRSP-A*":

            def run(q: Query) -> float:
                return sdrsp_query(graph, q.source, q.target, q.alpha, cov, window=window)[0]

        elif name == "LC":
            from repro.baselines.labelcorrecting import label_correcting_query

            def run(q: Query) -> float:
                return label_correcting_query(
                    graph, q.source, q.target, q.alpha, cov, window=window
                )[0]

        elif name == "SMOGA":
            rounds = self._smoga_rounds

            def run(q: Query) -> float:
                return smoga_query(
                    graph, q.source, q.target, q.alpha, cov, rounds=rounds
                )[0]

        else:
            raise KeyError(f"unknown algorithm {name!r}")
        return run

    @property
    def algorithms(self) -> tuple[str, ...]:
        return tuple(self._fns)

    def query_fn(self, name: str) -> Callable[[Query], float]:
        """The ``Query -> value`` callable for one algorithm."""
        return self._fns[name]

    def run(self, name: str, queries: list[Query]) -> WorkloadResult:
        """Time one algorithm over a workload."""
        fn = self._fns[name]
        values: list[float] = []
        start = time.perf_counter()
        for q in queries:
            values.append(fn(q))
        elapsed = time.perf_counter() - start
        return WorkloadResult(name, elapsed, values)


def run_workload(
    suite: AlgorithmSuite, queries: list[Query]
) -> dict[str, WorkloadResult]:
    """Run every algorithm of the suite over the same workload."""
    return {name: suite.run(name, queries) for name in suite.algorithms}
