"""Scaling experiment: how the NRP advantage grows with network size.

Not a paper figure, but the paper's central claim — orders-of-magnitude
query speedups on networks of hundreds of thousands of vertices — rests on
how the algorithms *scale*.  This experiment sweeps the synthetic NY layout
across grid scales and records per-query times, index cost, and the
NRP-vs-baseline speedup at each size, substantiating EXPERIMENTS.md's
extrapolation from our reduced scales to the paper's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.runners import AlgorithmSuite
from repro.experiments.workloads import distance_query_sets
from repro.network.datasets import make_dataset

__all__ = ["ScalePoint", "scaling_sweep"]


@dataclass(frozen=True)
class ScalePoint:
    """Measurements at one network size."""

    scale: float
    vertices: int
    edges: int
    nrp_build_seconds: float
    nrp_index_bytes: int
    per_query_seconds: dict[str, float]

    def speedup(self, baseline: str) -> float:
        """NRP speedup factor over the named baseline."""
        return self.per_query_seconds[baseline] / self.per_query_seconds["NRP"]


def scaling_sweep(
    scales: tuple[float, ...] = (0.4, 0.6, 0.8, 1.0),
    *,
    algorithms: tuple[str, ...] = ("NRP", "TBS", "SDRSP-A*"),
    queries_per_point: int = 20,
    seed: int = 7,
) -> list[ScalePoint]:
    """Measure every algorithm across network sizes (Q3 workloads)."""
    if "NRP" not in algorithms:
        raise ValueError("the sweep measures speedups relative to NRP")
    points: list[ScalePoint] = []
    for scale in scales:
        graph, _ = make_dataset("NY", scale=scale, seed=seed)
        start = time.perf_counter()
        suite = AlgorithmSuite(graph, None, algorithms=algorithms)
        build_seconds = suite.nrp.construction_seconds
        queries = distance_query_sets(graph, queries_per_point, seed=seed)[3]
        per_query: dict[str, float] = {}
        for name in algorithms:
            result = suite.run(name, queries)
            per_query[name] = result.seconds / max(1, len(queries))
        points.append(
            ScalePoint(
                scale=scale,
                vertices=graph.num_vertices,
                edges=graph.num_edges,
                nrp_build_seconds=build_seconds,
                nrp_index_bytes=suite.nrp.size_info().estimated_bytes,
                per_query_seconds=per_query,
            )
        )
    return points
