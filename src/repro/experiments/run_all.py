"""One-shot driver: rerun the paper's full evaluation and emit a report.

``python -m repro.experiments.run_all --scale 0.6 --queries 20`` executes
every table and figure of Section VI at the requested scale and writes a
markdown report with the measured numbers (the data behind EXPERIMENTS.md).
Individual experiments can be selected with ``--only``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import obs
from repro.resilience.atomic import atomic_write_text

from repro.experiments.charts import log_bar_chart
from repro.experiments.figures import (
    CV_VALUES,
    K_VALUES,
    fig7_query_times,
    fig8_hoplink_counts,
    fig9_pruning_ablation,
    fig10_real_data,
    fig11_index_cost_vs_k,
)
from repro.experiments.reporting import format_bytes, format_series, format_table
from repro.experiments.tables import (
    table1_datasets,
    table2_index_costs,
    table3_maintenance,
)

__all__ = ["run_all", "main"]

_Q_LABELS = ["Q1", "Q2", "Q3", "Q4", "Q5"]
_A_LABELS = ["a1", "a2", "a3", "a4", "a5"]


def _section(name: str, body: str) -> str:
    return f"## {name}\n\n```\n{body}\n```\n"


def run_all(
    *,
    scale: float = 0.6,
    queries: int = 20,
    seed: int = 7,
    only: set[str] | None = None,
    log=print,
) -> str:
    """Run the selected experiments; return the markdown report."""

    def wanted(name: str) -> bool:
        return only is None or name in only

    sections: list[str] = [
        "# NRP reproduction — measured results\n",
        f"Configuration: scale={scale}, queries/set={queries}, seed={seed}, "
        f"pure Python, single core.\n",
    ]
    started = time.perf_counter()

    if wanted("table1"):
        log("Table I ...")
        rows = table1_datasets(scale=scale, seed=seed)
        body = format_table(
            ["Dataset", "Region", "|V|", "|E|", "d_max"],
            [
                [r["dataset"], r["region"], r["V"], r["E"], f"{r['d_max']:.0f}"]
                for r in rows
            ],
        )
        sections.append(_section("Table I — datasets", body))

    if wanted("fig7"):
        for dataset in ("NY", "BAY", "COL"):
            for factor in ("Q", "alpha", "CV", "K"):
                if factor == "K" and dataset != "NY":
                    continue
                log(f"Figure 7 [{dataset} x {factor}] ...")
                series = fig7_query_times(
                    dataset, factor, scale=scale, queries_per_set=queries, seed=seed
                )
                x = {
                    "Q": _Q_LABELS,
                    "alpha": _A_LABELS,
                    "CV": list(CV_VALUES),
                    "K": list(K_VALUES),
                }[factor]
                body = format_series(factor, x, series) + "\n\n" + log_bar_chart(
                    factor, x, series, value_format="{:.4g} s"
                )
                sections.append(
                    _section(f"Figure 7 — {dataset}, workload seconds vs {factor}", body)
                )

    if wanted("fig8"):
        log("Figure 8 ...")
        data = fig8_hoplink_counts("NY", scale=scale, queries_per_set=queries, seed=seed)
        body = (
            format_series("Q", _Q_LABELS, data["by_Q"])
            + "\n\n"
            + format_series("CV", list(CV_VALUES), data["by_CV"])
        )
        sections.append(_section("Figure 8 — hoplinks / concatenations (NY)", body))

    if wanted("fig9"):
        log("Figure 9 ...")
        data = fig9_pruning_ablation("NY", scale=scale, queries_per_set=queries, seed=seed)
        body = (
            format_series("Q", _Q_LABELS, data["by_Q"])
            + "\n\n"
            + format_series("CV", list(CV_VALUES), data["by_CV"])
        )
        sections.append(_section("Figure 9 — pruning ablation (NY)", body))

    if wanted("fig10"):
        log("Figure 10 ...")
        data = fig10_real_data(scale=scale, queries_per_set=max(10, queries // 2), seed=seed)
        body = (
            format_series("Q", _Q_LABELS, data["by_Q"])
            + "\n\n"
            + format_series("alpha", _A_LABELS, data["by_alpha"])
        )
        sections.append(_section("Figure 10 — simulated NYC-DOT data", body))

    if wanted("fig11"):
        log("Figure 11 ...")
        data = fig11_index_cost_vs_k("NY", scale=min(scale, 0.6), seed=seed)
        body = format_series("K", list(K_VALUES), data)
        sections.append(_section("Figure 11 — index cost vs K (NY)", body))

    if wanted("table2"):
        log("Table II ...")
        rows = table2_index_costs(scale=scale, seed=seed)
        body = format_table(
            ["Dataset", "omega", "eta", "NRP time", "NRP size", "TBS time", "TBS size"],
            [
                [
                    r["dataset"],
                    r["omega"],
                    r["eta"],
                    f"{r['nrp_time_s']:.2f} s",
                    format_bytes(r["nrp_size_bytes"]),
                    f"{r['tbs_time_s']:.2f} s",
                    format_bytes(r["tbs_size_bytes"]),
                ]
                for r in rows
            ],
        )
        sections.append(_section("Table II — index cost", body))

    if wanted("table3"):
        log("Table III ...")
        rows = table3_maintenance(scale=scale, updates_per_op=25, seed=seed)
        body = format_table(
            ["Dataset", "Inc. mu", "Dec. mu", "Inc. sigma", "Dec. sigma", "Extra storage"],
            [
                [
                    r["dataset"],
                    f"{r['inc_mu'] * 1000:.1f} ms",
                    f"{r['dec_mu'] * 1000:.1f} ms",
                    f"{r['inc_sigma'] * 1000:.1f} ms",
                    f"{r['dec_sigma'] * 1000:.1f} ms",
                    format_bytes(r["extra_storage_bytes"]),
                ]
                for r in rows
            ],
        )
        sections.append(_section("Table III — maintenance", body))

    sections.append(
        f"\nTotal driver time: {time.perf_counter() - started:.1f} s\n"
    )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--only",
        help="comma-separated subset: table1,fig7,fig8,fig9,fig10,fig11,table2,table3",
    )
    parser.add_argument("--output", type=Path, default=Path("EXPERIMENTS_RAW.md"))
    parser.add_argument(
        "--metrics-output",
        type=Path,
        help="metrics sidecar path (default: <output stem>.metrics.json)",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="run without the observability registry / sidecar",
    )
    args = parser.parse_args(argv)
    only = set(args.only.split(",")) if args.only else None
    if not args.no_metrics:
        obs.registry().enable()
    report = run_all(scale=args.scale, queries=args.queries, seed=args.seed, only=only)
    atomic_write_text(args.output, report)
    print(f"wrote {args.output}", file=sys.stderr)
    if not args.no_metrics:
        sidecar = args.metrics_output or args.output.with_suffix(".metrics.json")
        document = obs.registry().to_json()
        document["run"] = {
            "driver": "repro.experiments.run_all",
            "scale": args.scale,
            "queries": args.queries,
            "seed": args.seed,
            "only": sorted(only) if only else None,
        }
        atomic_write_text(sidecar, json.dumps(document, indent=1) + "\n")
        print(f"wrote {sidecar}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
