"""Deterministic workload capture and replay.

A captured workload is a flight-recorder drain persisted to disk (schema
``repro.workload/1``): every record keeps its ``(s, t, alpha)`` triple,
the per-phase timings and Algorithm 1/2 counters observed at capture
time, and the bit-exact result digest.  :func:`replay_workload` re-executes
the triples against a (possibly rebuilt, possibly differently-backed)
index, verifies every digest bit-identically, and emits a comparison
report: latency percentiles (p50/p95/p99), per-phase attribution deltas,
and counter deltas grouped by kernel backend.

This is the regression loop the CLI exposes as ``repro workload capture``
and ``repro replay``:

1. ``repro workload capture --index idx.json --count 1000 -o wl.json``
2. change the code / rebuild the index / switch ``NRP_KERNELS``
3. ``repro replay --index idx.json --workload wl.json`` — exit 1 if any
   answer changed, plus a latency/counter diff either way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.obs.flight import (
    FLIGHT_FIELDS,
    get_flight_recorder,
    records_from_rows,
)
from repro.resilience.atomic import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import NRPIndex

__all__ = [
    "WORKLOAD_SCHEMA",
    "REPLAY_SCHEMA",
    "run_capture",
    "capture_workload",
    "save_workload",
    "load_workload",
    "replay_workload",
    "format_replay_report",
    "percentile",
]

#: Schema identifier of persisted workload files.
WORKLOAD_SCHEMA = "repro.workload/1"

#: Schema identifier of replay comparison reports.
REPLAY_SCHEMA = "repro.replay/1"

_F = {name: i for i, name in enumerate(FLIGHT_FIELDS)}
_I_DIGEST = _F["digest"]
_I_BACKEND = _F["backend"]
_I_TOTAL = _F["total_ns"]
_I_PLAN = _F["plan_ns"]
_I_EXECUTE = _F["execute_ns"]

#: The per-query counters diffed per backend by the replay report.
_COUNTER_FIELDS = (
    "hoplinks",
    "label_lookups",
    "candidate_paths",
    "surviving_paths",
    "concatenations",
    "pruned_prop2",
    "pruned_prop3",
    "pruned_prop5",
)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` with linear interpolation.

    Deterministic and dependency-free; raises on an empty sequence (a
    replay of zero queries is a usage error, not a statistic).
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo]) + (float(ordered[hi]) - float(ordered[lo])) * frac


def _latency_summary(records: Sequence[tuple]) -> dict:
    totals = [r[_I_TOTAL] for r in records]
    return {
        "count": len(records),
        "mean_ns": sum(totals) // max(len(totals), 1),
        "p50_ns": int(percentile(totals, 0.50)),
        "p95_ns": int(percentile(totals, 0.95)),
        "p99_ns": int(percentile(totals, 0.99)),
        "max_ns": max(totals),
    }


def _phase_means(records: Sequence[tuple]) -> dict:
    n = max(len(records), 1)
    return {
        "plan_mean_ns": sum(r[_I_PLAN] for r in records) // n,
        "execute_mean_ns": sum(r[_I_EXECUTE] for r in records) // n,
    }


def _counters_by_backend(records: Sequence[tuple]) -> dict:
    out: dict[str, dict[str, int]] = {}
    for rec in records:
        backend = rec[_I_BACKEND] or "-"
        bucket = out.setdefault(
            backend, {name: 0 for name in ("queries",) + _COUNTER_FIELDS}
        )
        bucket["queries"] += 1
        for name in _COUNTER_FIELDS:
            bucket[name] += rec[_F[name]]
    return out


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def run_capture(
    index: "NRPIndex",
    triples: Sequence[tuple[int, int, float]],
    *,
    use_pruning: bool = True,
    deadline_s: "float | None" = None,
) -> list[tuple]:
    """Answer ``triples`` with the flight recorder armed; return the records.

    The process-wide recorder is resized to hold the whole workload (so
    nothing is dropped), then restored to its previous capacity and armed
    state.  Records retained from before the capture are discarded — the
    recorder holds one coherent workload at a time.
    """
    recorder = get_flight_recorder()
    prev_enabled, prev_capacity = recorder.enabled, recorder.capacity
    recorder.configure(max(len(triples), 1))
    recorder.arm()
    try:
        for s, t, alpha in triples:
            index.query(
                s, t, alpha, use_pruning=use_pruning, deadline_s=deadline_s
            )
        records = recorder.records()
    finally:
        recorder.enabled = prev_enabled
        recorder.configure(prev_capacity)
    return records


def capture_workload(
    index: "NRPIndex",
    triples: Sequence[tuple[int, int, float]],
    *,
    use_pruning: bool = True,
    deadline_s: "float | None" = None,
) -> dict:
    """Capture a replayable workload document (``repro.workload/1``)."""
    records = run_capture(
        index, triples, use_pruning=use_pruning, deadline_s=deadline_s
    )
    backends = sorted({rec[_I_BACKEND] for rec in records})
    return {
        "schema": WORKLOAD_SCHEMA,
        "meta": {
            "queries": len(records),
            "use_pruning": use_pruning,
            "vertices": index.graph.num_vertices,
            "edges": index.graph.num_edges,
            "backends": backends,
        },
        "fields": list(FLIGHT_FIELDS),
        "records": [list(rec) for rec in records],
    }


def save_workload(document: dict, path: "str | Path") -> None:
    atomic_write_text(Path(path), json.dumps(document, indent=1) + "\n")


def load_workload(path: "str | Path") -> dict:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("schema") != WORKLOAD_SCHEMA:
        raise ValueError(
            f"{path}: not a workload file "
            f"(schema {document.get('schema')!r}, expected {WORKLOAD_SCHEMA!r})"
        )
    if document.get("fields") != list(FLIGHT_FIELDS):
        raise ValueError(
            f"{path}: workload field layout does not match this build's "
            f"flight-record layout"
        )
    return document


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay_workload(
    index: "NRPIndex",
    workload: dict,
    *,
    use_pruning: "bool | None" = None,
) -> dict:
    """Re-execute a captured workload and diff it against the capture.

    Every triple is re-answered in capture order and its digest compared
    bit-for-bit; ``identical`` is True only when all of them match.  The
    report also carries latency percentiles, per-phase attribution means,
    and per-backend counter totals for both runs, with replay-minus-
    baseline deltas.
    """
    baseline = records_from_rows(workload["records"])
    if not baseline:
        raise ValueError("cannot replay an empty workload")
    if use_pruning is None:
        use_pruning = bool(workload.get("meta", {}).get("use_pruning", True))
    triples = [(rec[0], rec[1], rec[2]) for rec in baseline]
    replayed = run_capture(index, triples, use_pruning=use_pruning)

    mismatches = []
    for seq, (base, rerun) in enumerate(zip(baseline, replayed)):
        if base[_I_DIGEST] != rerun[_I_DIGEST]:
            mismatches.append(
                {
                    "seq": seq,
                    "s": base[0],
                    "t": base[1],
                    "alpha": base[2],
                    "expected_digest": base[_I_DIGEST],
                    "actual_digest": rerun[_I_DIGEST],
                    "baseline_backend": base[_I_BACKEND],
                    "replay_backend": rerun[_I_BACKEND],
                }
            )

    base_latency = _latency_summary(baseline)
    replay_latency = _latency_summary(replayed)
    base_phases = _phase_means(baseline)
    replay_phases = _phase_means(replayed)
    base_counters = _counters_by_backend(baseline)
    replay_counters = _counters_by_backend(replayed)
    counter_report: dict[str, dict] = {}
    for backend in sorted(set(base_counters) | set(replay_counters)):
        before = base_counters.get(backend, {})
        after = replay_counters.get(backend, {})
        names = sorted(set(before) | set(after))
        counter_report[backend] = {
            "baseline": before,
            "replay": after,
            "delta": {
                name: after.get(name, 0) - before.get(name, 0) for name in names
            },
        }
    return {
        "schema": REPLAY_SCHEMA,
        "queries": len(baseline),
        "identical": not mismatches,
        "digest_matches": len(baseline) - len(mismatches),
        "digest_mismatches": mismatches,
        "latency": {
            "baseline": base_latency,
            "replay": replay_latency,
            "delta_ns": {
                key: replay_latency[key] - base_latency[key]
                for key in ("mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns")
            },
        },
        "phases": {
            "baseline": base_phases,
            "replay": replay_phases,
            "delta_ns": {
                key: replay_phases[key] - base_phases[key] for key in base_phases
            },
        },
        "counters": counter_report,
    }


def format_replay_report(report: dict) -> str:
    """Human-readable rendering of a :func:`replay_workload` report."""
    from repro.experiments.reporting import format_table

    verdict = (
        "bit-identical"
        if report["identical"]
        else f"{len(report['digest_mismatches'])} DIGEST MISMATCH(ES)"
    )
    latency_rows = []
    base, rerun = report["latency"]["baseline"], report["latency"]["replay"]
    for key in ("mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"):
        delta = report["latency"]["delta_ns"][key]
        latency_rows.append(
            [
                key[:-3],
                f"{base[key] / 1e6:.3f} ms",
                f"{rerun[key] / 1e6:.3f} ms",
                f"{delta / 1e6:+.3f} ms",
            ]
        )
    phases = report["phases"]
    for key in ("plan_mean_ns", "execute_mean_ns"):
        latency_rows.append(
            [
                key[:-3],
                f"{phases['baseline'][key] / 1e6:.3f} ms",
                f"{phases['replay'][key] / 1e6:.3f} ms",
                f"{phases['delta_ns'][key] / 1e6:+.3f} ms",
            ]
        )
    parts = [
        format_table(
            ["statistic", "baseline", "replay", "delta"],
            latency_rows,
            title=(
                f"Replayed {report['queries']} queries — "
                f"{report['digest_matches']}/{report['queries']} digests "
                f"{verdict}"
            ),
        )
    ]
    counter_rows = []
    for backend, diff in report["counters"].items():
        for name in ("queries",) + _COUNTER_FIELDS:
            before = diff["baseline"].get(name, 0)
            after = diff["replay"].get(name, 0)
            if before or after:
                counter_rows.append(
                    [backend, name, before, after, after - before]
                )
    if counter_rows:
        parts.append(
            format_table(
                ["backend", "counter", "baseline", "replay", "delta"],
                counter_rows,
                title="Counter deltas per backend",
            )
        )
    if report["digest_mismatches"]:
        parts.append(
            format_table(
                ["seq", "s", "t", "alpha", "expected", "actual"],
                [
                    [
                        m["seq"],
                        m["s"],
                        m["t"],
                        f"{m['alpha']:.4f}",
                        m["expected_digest"],
                        m["actual_digest"],
                    ]
                    for m in report["digest_mismatches"][:20]
                ],
                title="Digest mismatches (first 20)",
            )
        )
    return "\n".join(parts)
