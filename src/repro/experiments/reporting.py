"""ASCII rendering of experiment results (the paper's tables and series)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_seconds", "format_bytes"]


def format_seconds(seconds: float) -> str:
    """Human scale: us / ms / s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def format_bytes(num_bytes: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if num_bytes < 1024.0 or unit == "GB":
            return f"{num_bytes:.1f} {unit}"
        num_bytes /= 1024.0
    raise AssertionError("unreachable")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    value_format: str = "{:.4g}",
) -> str:
    """One figure panel as a table: x values as columns, one row per series."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = [
        [name] + [value_format.format(v) for v in values]
        for name, values in series.items()
    ]
    return format_table(headers, rows, title)
