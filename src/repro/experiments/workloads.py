"""Query workload generation (Section VI-A).

Five distance-banded query sets ``Q_1..Q_5`` whose source-destination mean
distances lie in ``[d_max/2^(6-i), d_max/2^(5-i)]`` with alpha uniform in
``[0.7, 0.8]``, and five alpha-banded sets that reuse the ``Q_3`` pairs with
``alpha_i`` uniform in ``[0.4 + 0.1*i, 0.5 + 0.1*i]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.baselines.dijkstra import approximate_diameter, dijkstra

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.graph import StochasticGraph

__all__ = ["Query", "distance_query_sets", "alpha_query_sets", "random_queries"]


@dataclass(frozen=True)
class Query:
    """One RSP query instance."""

    source: int
    target: int
    alpha: float


def distance_query_sets(
    graph: "StochasticGraph",
    queries_per_set: int = 100,
    *,
    seed: int = 0,
    alpha_range: tuple[float, float] = (0.7, 0.8),
    max_attempts: int = 500,
) -> dict[int, list[Query]]:
    """Generate ``{i: Q_i}`` for ``i = 1..5`` (paper distance bands).

    Random sources are Dijkstra-swept and targets are drawn from each band's
    eligible set, so one sweep typically serves all five bands.
    """
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    d_max = approximate_diameter(graph, seeds=rng.sample(vertices, min(3, len(vertices))))
    bands = {
        i: (d_max / 2 ** (6 - i), d_max / 2 ** (5 - i)) for i in range(1, 6)
    }
    sets: dict[int, list[Query]] = {i: [] for i in range(1, 6)}
    attempts = 0
    while attempts < max_attempts and any(
        len(qs) < queries_per_set for qs in sets.values()
    ):
        attempts += 1
        source = rng.choice(vertices)
        dist, _ = dijkstra(graph, source)
        by_band: dict[int, list[int]] = {i: [] for i in range(1, 6)}
        for v, d in dist.items():
            for i, (lo, hi) in bands.items():
                if lo <= d < hi:
                    by_band[i].append(v)
                    break
        for i, candidates in by_band.items():
            if not candidates:
                continue
            needed = queries_per_set - len(sets[i])
            for target in rng.sample(candidates, min(needed, len(candidates))):
                sets[i].append(
                    Query(source, target, rng.uniform(*alpha_range))
                )
    return sets


def alpha_query_sets(
    q3: list[Query], *, seed: int = 0
) -> dict[int, list[Query]]:
    """The five alpha-banded sets reusing ``Q_3``'s source-target pairs.

    Band ``i`` draws alpha uniformly from ``[0.4 + 0.1*i, 0.5 + 0.1*i]``;
    band 1's draws are clamped above 0.5 (the stored plane) and band 5's
    below 0.999 — the practical refine bound the index is built with
    (Section IV: "alpha <= 0.999 can satisfy most user requirements").
    """
    rng = random.Random(seed)
    sets: dict[int, list[Query]] = {}
    for i in range(1, 6):
        lo = max(0.4 + 0.1 * i, 0.5 + 1e-9)
        hi = min(0.5 + 0.1 * i, 0.999)
        sets[i] = [
            Query(q.source, q.target, rng.uniform(lo, hi)) for q in q3
        ]
    return sets


def random_queries(
    graph: "StochasticGraph",
    count: int,
    *,
    seed: int = 0,
    alpha_range: tuple[float, float] = (0.7, 0.8),
) -> list[Query]:
    """Uniformly random source-target pairs (connected graphs only)."""
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    queries = []
    while len(queries) < count:
        s = rng.choice(vertices)
        t = rng.choice(vertices)
        if s != t:
            queries.append(Query(s, t, rng.uniform(*alpha_range)))
    return queries
