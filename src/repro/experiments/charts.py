"""Terminal-friendly chart rendering for experiment results.

The paper's figures are log-scale line plots; these helpers render the same
data as ASCII bar charts (one group per x value, one bar per series) so the
benchmark result files are readable without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["bar_chart", "log_bar_chart"]

_FULL = "#"


def _render(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    transform,
    value_format: str,
    width: int,
    title: str,
    scale_note: str,
) -> str:
    name_width = max(len(name) for name in series)
    x_width = max(len(str(x)) for x in x_values)
    transformed = {
        name: [transform(v) for v in values] for name, values in series.items()
    }
    lo = min(min(vals) for vals in transformed.values())
    hi = max(max(vals) for vals in transformed.values())
    span = hi - lo if hi > lo else 1.0
    lines: list[str] = []
    if title:
        lines.append(title + scale_note)
    for i, x in enumerate(x_values):
        lines.append(f"{x_label}={x}")
        for name, values in series.items():
            frac = (transformed[name][i] - lo) / span
            bar = _FULL * max(1, round(frac * width))
            value = value_format.format(values[i])
            lines.append(
                f"  {name.ljust(name_width)} |{bar.ljust(width)}| {value}"
            )
    return "\n".join(lines)


def bar_chart(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 40,
    value_format: str = "{:.4g}",
) -> str:
    """Linear-scale grouped ASCII bars."""
    return _render(
        x_label, x_values, series, lambda v: v, value_format, width, title, ""
    )


def log_bar_chart(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 40,
    value_format: str = "{:.4g}",
) -> str:
    """Log-scale bars — the scale the paper's query-time figures use.

    Non-positive values are clamped to the smallest positive value present.
    """
    positives = [v for vals in series.values() for v in vals if v > 0]
    floor = min(positives) if positives else 1e-12

    def transform(v: float) -> float:
        return math.log10(max(v, floor))

    return _render(
        x_label, x_values, series, transform, value_format, width, title, "  [log scale]"
    )
