"""Per-figure experiment runners (Figures 7-11).

Every function returns plain dicts keyed the way the paper's panels are,
ready for :func:`repro.experiments.reporting.format_series`.  Scales and
query counts default to pure-Python-friendly values; the paper's trends, not
its absolute C++ timings, are the reproduction target (DESIGN.md
substitution 2).
"""

from __future__ import annotations

import time

from repro.core.index import NRPIndex
from repro.core.query import QueryStats
from repro.experiments.runners import ALGORITHM_ORDER, AlgorithmSuite
from repro.experiments.workloads import (
    Query,
    alpha_query_sets,
    distance_query_sets,
)
from repro.network.datasets import make_dataset
from repro.network.generators import assign_random_cv, generate_correlations
from repro.network.nyc_dot import fit_edge_distributions, simulate_dot_feed

__all__ = [
    "fig7_query_times",
    "fig8_hoplink_counts",
    "fig9_pruning_ablation",
    "fig10_real_data",
    "fig11_index_cost_vs_k",
]

CV_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
K_VALUES = (1, 2, 3, 4, 5)


def _distance_panel(
    suite: AlgorithmSuite, sets: dict[int, list[Query]]
) -> dict[str, list[float]]:
    """Workload seconds per algorithm across the five banded sets."""
    out: dict[str, list[float]] = {name: [] for name in suite.algorithms}
    for i in sorted(sets):
        for name in suite.algorithms:
            out[name].append(suite.run(name, sets[i]).seconds)
    return out


def fig7_query_times(
    dataset: str,
    factor: str,
    *,
    scale: float = 1.0,
    queries_per_set: int = 50,
    algorithms: tuple[str, ...] = ALGORITHM_ORDER,
    correlation_density: float = 0.03,
    seed: int = 7,
) -> dict[str, list[float]]:
    """One panel of Figure 7: workload time by Q, alpha, CV, or K.

    ``factor`` is one of ``"Q"``, ``"alpha"``, ``"CV"``, ``"K"``.  Q/alpha
    panels reuse one default network (CV=0.5, independent); each CV value
    re-weights the network and rebuilds the indexes; each K value regenerates
    correlations and rebuilds (the paper's default setting per panel).
    """
    if factor in ("Q", "alpha"):
        graph, cov = make_dataset(dataset, scale=scale, seed=seed)
        suite = AlgorithmSuite(graph, None, algorithms=algorithms)
        q_sets = distance_query_sets(graph, queries_per_set, seed=seed)
        if factor == "Q":
            return _distance_panel(suite, q_sets)
        return _distance_panel(suite, alpha_query_sets(q_sets[3], seed=seed))
    if factor == "CV":
        out: dict[str, list[float]] = {name: [] for name in algorithms}
        for cv in CV_VALUES:
            graph, _ = make_dataset(dataset, scale=scale, cv=cv, seed=seed)
            suite = AlgorithmSuite(graph, None, algorithms=algorithms)
            queries = distance_query_sets(graph, queries_per_set, seed=seed)[3]
            for name in algorithms:
                out[name].append(suite.run(name, queries).seconds)
        return out
    if factor == "K":
        out = {name: [] for name in algorithms}
        for k in K_VALUES:
            graph, cov = make_dataset(
                dataset,
                scale=scale,
                hops=k,
                correlated=True,
                correlation_density=correlation_density,
                seed=seed,
            )
            suite = AlgorithmSuite(graph, cov, window=k, algorithms=algorithms)
            queries = distance_query_sets(graph, queries_per_set, seed=seed)[3]
            for name in algorithms:
                out[name].append(suite.run(name, queries).seconds)
        return out
    raise ValueError(f"unknown factor {factor!r}; expected Q, alpha, CV, or K")


def fig8_hoplink_counts(
    dataset: str = "NY",
    *,
    scale: float = 1.0,
    queries_per_set: int = 50,
    seed: int = 7,
) -> dict[str, dict[str, list[float]]]:
    """Figure 8: average hoplinks and path concatenations per query.

    Panel (a) varies Q on the default network; panel (b) varies CV using the
    Q3 pairs.  Returns ``{"by_Q": {...}, "by_CV": {...}}`` with series
    ``hoplinks`` and ``concatenations``.
    """
    graph, _ = make_dataset(dataset, scale=scale, seed=seed)
    index = NRPIndex(graph)
    q_sets = distance_query_sets(graph, queries_per_set, seed=seed)

    def averages(index: NRPIndex, queries: list[Query]) -> tuple[float, float]:
        stats = QueryStats()
        for q in queries:
            index.query(q.source, q.target, q.alpha, stats=stats)
        n = max(1, len(queries))
        return stats.hoplinks / n, stats.concatenations / n

    by_q: dict[str, list[float]] = {"hoplinks": [], "concatenations": []}
    for i in sorted(q_sets):
        hops, concats = averages(index, q_sets[i])
        by_q["hoplinks"].append(hops)
        by_q["concatenations"].append(concats)

    by_cv: dict[str, list[float]] = {"hoplinks": [], "concatenations": []}
    pairs = q_sets[3]
    for cv in CV_VALUES:
        graph_cv, _ = make_dataset(dataset, scale=scale, cv=cv, seed=seed)
        index_cv = NRPIndex(graph_cv)
        hops, concats = averages(index_cv, pairs)
        by_cv["hoplinks"].append(hops)
        by_cv["concatenations"].append(concats)
    return {"by_Q": by_q, "by_CV": by_cv}


def fig9_pruning_ablation(
    dataset: str = "NY",
    *,
    scale: float = 1.0,
    queries_per_set: int = 50,
    seed: int = 7,
) -> dict[str, dict[str, list[float]]]:
    """Figure 9: path concatenations with and without Algorithm 2 pruning."""
    graph, _ = make_dataset(dataset, scale=scale, seed=seed)
    index = NRPIndex(graph)
    q_sets = distance_query_sets(graph, queries_per_set, seed=seed)

    def avg_concats(index: NRPIndex, queries: list[Query], pruning: bool) -> float:
        stats = QueryStats()
        for q in queries:
            index.query(q.source, q.target, q.alpha, use_pruning=pruning, stats=stats)
        return stats.concatenations / max(1, len(queries))

    by_q = {"NRP": [], "NRP-w/o pruning": []}
    for i in sorted(q_sets):
        by_q["NRP"].append(avg_concats(index, q_sets[i], True))
        by_q["NRP-w/o pruning"].append(avg_concats(index, q_sets[i], False))

    by_cv = {"NRP": [], "NRP-w/o pruning": []}
    pairs = q_sets[3]
    for cv in CV_VALUES:
        graph_cv, _ = make_dataset(dataset, scale=scale, cv=cv, seed=seed)
        index_cv = NRPIndex(graph_cv)
        by_cv["NRP"].append(avg_concats(index_cv, pairs, True))
        by_cv["NRP-w/o pruning"].append(avg_concats(index_cv, pairs, False))
    return {"by_Q": by_q, "by_CV": by_cv}


def fig10_real_data(
    *,
    scale: float = 1.0,
    queries_per_set: int = 30,
    algorithms: tuple[str, ...] = ALGORITHM_ORDER,
    seed: int = 7,
) -> dict[str, dict[str, list[float]]]:
    """Figure 10: query times on the (simulated) NYC-DOT fitted network.

    Runs the full pipeline: simulate the sensor feed during rush hour, fit
    edge normals by MLE, then sweep Q and alpha workloads.
    """
    graph, _ = make_dataset("NY", scale=scale, seed=seed)
    sensors = simulate_dot_feed(graph, rush_hour_factor=1.4, seed=seed)
    fitted = fit_edge_distributions(graph, sensors)
    suite = AlgorithmSuite(fitted, None, algorithms=algorithms)
    q_sets = distance_query_sets(fitted, queries_per_set, seed=seed)
    return {
        "by_Q": _distance_panel(suite, q_sets),
        "by_alpha": _distance_panel(suite, alpha_query_sets(q_sets[3], seed=seed)),
    }


def fig11_index_cost_vs_k(
    dataset: str = "NY",
    *,
    scale: float = 0.6,
    correlation_density: float = 0.03,
    seed: int = 7,
) -> dict[str, list[float]]:
    """Figure 11: NRP index time (s) and size (bytes) for K = 1..5."""
    times: list[float] = []
    sizes: list[float] = []
    for k in K_VALUES:
        graph, cov = make_dataset(
            dataset,
            scale=scale,
            hops=k,
            correlated=True,
            correlation_density=correlation_density,
            seed=seed,
        )
        start = time.perf_counter()
        index = NRPIndex(graph, cov, window=k)
        times.append(time.perf_counter() - start)
        sizes.append(float(index.size_info().estimated_bytes))
    return {"index_time_s": times, "index_size_bytes": sizes}
