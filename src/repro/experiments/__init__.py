"""Experiment harness reproducing Section VI.

One function per paper artefact (tables I-III, figures 7-11); see DESIGN.md
Section 4 for the experiment index.  Each function returns plain data
structures (dicts/lists) so the benchmark scripts can both time them and
print the paper-style rows, and :mod:`repro.experiments.reporting` renders
them as ASCII tables.
"""

from repro.experiments.figures import (
    fig7_query_times,
    fig8_hoplink_counts,
    fig9_pruning_ablation,
    fig10_real_data,
    fig11_index_cost_vs_k,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runners import AlgorithmSuite, run_workload
from repro.experiments.tables import (
    table1_datasets,
    table2_index_costs,
    table3_maintenance,
)
from repro.experiments.workloads import (
    Query,
    alpha_query_sets,
    distance_query_sets,
    random_queries,
)

__all__ = [
    "Query",
    "distance_query_sets",
    "alpha_query_sets",
    "random_queries",
    "AlgorithmSuite",
    "run_workload",
    "format_table",
    "format_series",
    "fig7_query_times",
    "fig8_hoplink_counts",
    "fig9_pruning_ablation",
    "fig10_real_data",
    "fig11_index_cost_vs_k",
    "table1_datasets",
    "table2_index_costs",
    "table3_maintenance",
]
