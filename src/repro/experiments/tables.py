"""Per-table experiment runners (Tables I-III)."""

from __future__ import annotations

import random
import time

from repro.baselines.tbs import TBSIndex
from repro.baselines.dijkstra import approximate_diameter
from repro.core.index import NRPIndex
from repro.core.maintenance import IndexMaintainer
from repro.network.datasets import DATASETS, make_dataset

__all__ = ["table1_datasets", "table2_index_costs", "table3_maintenance"]


def table1_datasets(*, scale: float = 1.0, seed: int = 7) -> list[dict[str, object]]:
    """Table I: dataset name, region, |V|, |E|, approximate diameter."""
    rows = []
    for name, spec in DATASETS.items():
        graph, _ = make_dataset(name, scale=scale, seed=seed)
        rng = random.Random(seed)
        seeds = rng.sample(list(graph.vertices()), min(3, graph.num_vertices))
        rows.append(
            {
                "dataset": name,
                "region": spec.region,
                "V": graph.num_vertices,
                "E": graph.num_edges,
                "d_max": approximate_diameter(graph, seeds=seeds),
            }
        )
    return rows


def table2_index_costs(
    *, scale: float = 1.0, seed: int = 7, datasets: tuple[str, ...] = ("NY", "BAY", "COL")
) -> list[dict[str, object]]:
    """Table II: treewidth, treeheight, NRP vs TBS index time and size."""
    rows = []
    for name in datasets:
        graph, _ = make_dataset(name, scale=scale, seed=seed)
        start = time.perf_counter()
        nrp = NRPIndex(graph)
        nrp_time = time.perf_counter() - start
        start = time.perf_counter()
        tbs = TBSIndex(graph)
        tbs_time = time.perf_counter() - start
        info = nrp.size_info()
        rows.append(
            {
                "dataset": name,
                "omega": nrp.treewidth,
                "eta": nrp.treeheight,
                "nrp_time_s": nrp_time,
                "nrp_size_bytes": info.exact_bytes,
                "nrp_heuristic_bytes": info.heuristic_bytes,
                "tbs_time_s": tbs_time,
                "tbs_size_bytes": tbs.estimated_bytes,
            }
        )
    return rows


def table3_maintenance(
    *,
    scale: float = 1.0,
    updates_per_op: int = 50,
    seed: int = 7,
    datasets: tuple[str, ...] = ("NY", "BAY", "COL"),
) -> list[dict[str, object]]:
    """Table III: average update time per operation type + extra storage.

    Following the paper (and [27]): increase mu to a random value in
    ``[mu, 2*mu]``, decrease to ``[0.5*mu, mu]``, and likewise for sigma,
    over randomly selected edges; each operation is applied through
    Algorithms 4-5 and then reverted so operations stay comparable.
    """
    rows = []
    for name in datasets:
        graph, _ = make_dataset(name, scale=scale, seed=seed)
        index = NRPIndex(graph)
        maintainer = IndexMaintainer(index)
        rng = random.Random(seed + 1)
        edges = list(graph.edge_keys())
        timings: dict[str, float] = {}
        for op in ("inc_mu", "dec_mu", "inc_sigma", "dec_sigma"):
            total = 0.0
            for _ in range(updates_per_op):
                u, v = edges[rng.randrange(len(edges))]
                weight = graph.edge(u, v)
                mu, var = weight.mu, weight.variance
                if op == "inc_mu":
                    new_mu, new_var = mu * rng.uniform(1.0, 2.0), var
                elif op == "dec_mu":
                    new_mu, new_var = mu * rng.uniform(0.5, 1.0), var
                elif op == "inc_sigma":
                    new_mu, new_var = mu, var * rng.uniform(1.0, 2.0) ** 2
                else:
                    new_mu, new_var = mu, var * rng.uniform(0.5, 1.0) ** 2
                total += maintainer.update_edge(u, v, new_mu, new_var).seconds
                maintainer.update_edge(u, v, mu, var)  # revert (untimed)
            timings[op] = total / updates_per_op
        rows.append(
            {
                "dataset": name,
                **timings,
                "extra_storage_bytes": index.size_info().extra_storage_bytes,
            }
        )
    return rows
