"""Cached ``Z_alpha`` lookups and a classic Z table.

The paper notes that ``Z_alpha`` "can be found by looking up the standard
normal table (also called the Z table) or using numerical function
approximation".  We provide both: :func:`z_value` memoises exact quantile
evaluations (queries reuse a handful of alpha values, so the cache is
effective), and :func:`z_table` materialises a conventional table for
documentation, examples, and tests.
"""

from __future__ import annotations

from functools import lru_cache

from repro.stats.normal import phi_inv

__all__ = ["z_value", "z_table", "Z_TABLE_ALPHAS"]

#: Confidence levels conventionally listed in Z tables.
Z_TABLE_ALPHAS: tuple[float, ...] = (
    0.5,
    0.6,
    0.7,
    0.75,
    0.8,
    0.85,
    0.9,
    0.95,
    0.975,
    0.99,
    0.995,
    0.999,
)


@lru_cache(maxsize=4096)
def z_value(alpha: float) -> float:
    """Memoised ``Z_alpha = phi_inv(alpha)``.

    ``alpha = 0.5`` returns exactly ``0.0`` (the paper's special case where
    the RSP degenerates to the deterministic shortest path on means).  The
    exact IEEE compare below is deliberate, not a tolerance bug: only the
    literal ``0.5`` means "the deterministic case", and ``phi_inv`` is
    continuous there (``phi_inv(0.5 ± 1e-10) ≈ ±2.5e-10``), so snapping a
    *nearby* alpha to ``0.0`` through a tolerance would return the wrong
    quantile.  The branch pins the ``Phi^-1`` symmetry point regardless of
    how ``phi_inv`` is implemented (its current central rational
    approximation with Halley refinement also yields exactly ``0.0``, but
    that is an implementation detail this sentinel makes a guarantee).
    """
    if alpha == 0.5:  # nrplint: disable=float-eq -- exact sentinel: the literal 0.5 selects the paper's deterministic case; phi_inv is continuous here so a tolerance would corrupt nearby alphas (see docstring)
        return 0.0
    return phi_inv(alpha)


def z_table(alphas: tuple[float, ...] = Z_TABLE_ALPHAS) -> dict[float, float]:
    """Return ``{alpha: Z_alpha}`` for the given confidence levels."""
    return {alpha: z_value(alpha) for alpha in alphas}
