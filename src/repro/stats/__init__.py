"""Normal-distribution toolkit used throughout the NRP reproduction.

Everything in the paper reduces path evaluation to the Gaussian quantile
``F_p^{-1}(alpha) = mu_p + Z_alpha * sigma_p``; this subpackage provides the
standard-normal CDF ``phi_cdf``, its inverse ``phi_inv`` (the ``Z_alpha``
lookup), and small helpers shared by the index and the baselines.
"""

from repro.stats.normal import (
    Normal,
    phi_cdf,
    phi_inv,
    phi_pdf,
    reliability_value,
)
from repro.stats.zscores import Z_TABLE_ALPHAS, z_table, z_value

__all__ = [
    "Normal",
    "phi_cdf",
    "phi_inv",
    "phi_pdf",
    "reliability_value",
    "z_value",
    "z_table",
    "Z_TABLE_ALPHAS",
]
