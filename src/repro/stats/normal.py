"""Standard-normal CDF, PDF, and quantile function.

The quantile ``phi_inv`` implements Peter Acklam's rational approximation
with one Halley refinement step, which is accurate to ~1e-15 over the open
unit interval.  We implement it directly (rather than importing scipy) so the
core library stays dependency-free; the test suite cross-checks the values
against ``scipy.special.ndtri``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

__all__ = ["phi_cdf", "phi_pdf", "phi_inv", "reliability_value", "Normal"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)

# Coefficients of Acklam's rational approximation for the normal quantile.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def phi_cdf(x: float) -> float:
    """Cumulative distribution function of the standard normal N(0, 1)."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def phi_pdf(x: float) -> float:
    """Probability density function of the standard normal N(0, 1)."""
    return _INV_SQRT_2PI * math.exp(-0.5 * x * x)


def _acklam(p: float) -> float:
    """Acklam's rational approximation to the standard normal quantile."""
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        num = ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        den = (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        return num / den
    if p > _P_HIGH:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        num = ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        den = (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        return -num / den
    q = p - 0.5
    r = q * q
    num = ((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]
    den = ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0
    return num * q / den


def phi_inv(p: float) -> float:
    """Quantile (inverse CDF) of the standard normal distribution.

    This is the paper's ``Z_alpha``.  Raises ``ValueError`` outside (0, 1).
    ``phi_inv(0.5)`` is exactly ``0.0``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"phi_inv requires p in (0, 1), got {p!r}")
    x = _acklam(p)
    # One step of Halley's method sharpens the approximation to ~1e-15.
    err = phi_cdf(x) - p
    u = err * math.sqrt(2.0 * math.pi) * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


def reliability_value(mu: float, variance: float, alpha: float) -> float:
    """The path metric ``F_p^{-1}(alpha) = mu + Z_alpha * sigma``.

    ``variance`` may be zero (degenerate constant travel time).  Negative
    variances (possible under the paper-faithful non-PSD covariance sampling)
    are clamped to zero, matching Section 3 of DESIGN.md.
    """
    if variance <= 0.0:
        return mu
    return mu + phi_inv(alpha) * math.sqrt(variance)


@dataclass(frozen=True, slots=True)
class Normal:
    """A normal random variable N(mu, sigma^2) used for edge travel times."""

    mu: float
    variance: float

    def __post_init__(self) -> None:
        if self.variance < 0.0:
            raise ValueError(f"variance must be non-negative, got {self.variance}")

    @property
    def sigma(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    def cdf(self, w: float) -> float:
        """``Pr(W <= w)`` — the paper's ``F_e(w)``."""
        if self.variance == 0.0:  # nrplint: disable=float-eq -- exact sentinel: variance is 0.0 only when constructed as the degenerate (deterministic) distribution; near-zero variances must still use the Phi path
            return 1.0 if w >= self.mu else 0.0
        return phi_cdf((w - self.mu) / self.sigma)

    def quantile(self, alpha: float) -> float:
        """``F^{-1}(alpha)``: smallest w with ``Pr(W <= w) >= alpha``."""
        return reliability_value(self.mu, self.variance, alpha)

    def __add__(self, other: "Normal") -> "Normal":
        """Sum of independent normals (means and variances add)."""
        return Normal(self.mu + other.mu, self.variance + other.variance)

    def sample(self, rng: "random.Random") -> float:
        """Draw one travel-time sample using ``rng`` (``random.Random``)."""
        return rng.gauss(self.mu, self.sigma)
