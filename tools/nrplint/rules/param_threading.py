"""NRP011 — ``deadline_s``/``backend`` are threaded through every fan-out.

PR 8's subtlest bug: ``QueryEngine.answer_batch`` forwarded ``deadline_s``
and ``backend`` on its fast path but silently dropped both on the
fallthrough — every degraded batch ran with no deadline on the default
backend, and nothing failed loudly because both parameters default to
``None``.  The serving plane multiplies the fan-out (entry → batch →
group → answer → plan/execute), so the discipline is now mechanical:

    inside ``repro.core``/``repro.serve``, a function that *accepts* one
    of the threaded parameters must *pass* it on every same-module call
    to a function that also accepts it.

Resolution is deliberately local — bare-name calls to module functions
and ``self.method`` calls within the class — because that is exactly the
internal fan-out where a dropped default hides; cross-object calls
(``self.engine.answer(...)``) surface at their own definition site.
Forwarding counts when the parameter is passed by keyword, covered
positionally, or swept along by ``*args``/``**kwargs``.  A call that
deliberately severs the chain takes a justified suppression, which is the
point: dropping a deadline becomes a decision, not an accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register
from nrplint.flow import ModuleFlow, get_flow, iter_functions, walk_local

_SCOPES = ("repro.core", "repro.serve")

#: The parameters whose loss was PR 8's fallthrough bug.
_THREADED = ("deadline_s", "backend")

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _in_scope(ctx: FileContext) -> bool:
    return any(ctx.in_package(scope) for scope in _SCOPES)


def _resolve_callee(
    call: ast.Call, flow: ModuleFlow, cls_name: str | None
) -> tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, bool] | None:
    """``(display, def, is_method)`` for same-module callees."""
    func = call.func
    if isinstance(func, ast.Name):
        target = flow.functions.get(func.id)
        if target is not None:
            return func.id, target, False
    elif (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and cls_name is not None
    ):
        cls = flow.classes.get(cls_name)
        if cls is not None:
            method = cls.methods.get(func.attr)
            if method is not None:
                return f"self.{func.attr}", method, True
    return None


def _positional_index(
    callee: ast.FunctionDef | ast.AsyncFunctionDef, param: str, is_method: bool
) -> int | None:
    """Index of ``param`` among the callee's positional slots, or None."""
    positional = [
        a.arg for a in (*callee.args.posonlyargs, *callee.args.args)
    ]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    try:
        return positional.index(param)
    except ValueError:
        return None


@register
class ParamThreadingRule(Rule):
    name = "param-threading"
    code = "NRP011"
    summary = "deadline_s/backend are forwarded through every internal fan-out"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        flow = get_flow(ctx)
        for cls_node, func in iter_functions(ctx):
            caller_params = {
                a.arg
                for a in (
                    *func.args.posonlyargs,
                    *func.args.args,
                    *func.args.kwonlyargs,
                )
            }
            relevant = [p for p in _THREADED if p in caller_params]
            if not relevant:
                continue
            cls_name = cls_node.name if cls_node is not None else None
            yield from self._check_calls(ctx, flow, func, cls_name, relevant)

    def _check_calls(
        self,
        ctx: FileContext,
        flow: ModuleFlow,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
        relevant: list[str],
    ) -> Iterator[Finding]:
        for node in walk_local(func):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve_callee(node, flow, cls_name)
            if resolved is None:
                continue
            display, callee, is_method = resolved
            if callee is func:
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs sweeps everything along
            if any(isinstance(arg, ast.Starred) for arg in node.args):
                continue  # *args may cover the positional slots
            callee_params = {
                a.arg
                for a in (
                    *callee.args.posonlyargs,
                    *callee.args.args,
                    *callee.args.kwonlyargs,
                )
            }
            for param in relevant:
                if param not in callee_params:
                    continue
                if any(kw.arg == param for kw in node.keywords):
                    continue
                index = _positional_index(callee, param, is_method)
                if index is not None and len(node.args) > index:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"call to {display}() drops {param}; the caller accepts "
                    f"it, so forward {param}={param} (or suppress with a "
                    "reason if severing the chain is intentional)",
                )
