"""NRP010 — durable artefacts are written through the atomic helpers.

PR 4's entire bug class was torn files: an index save, WAL segment, or
benchmark sidecar interrupted mid-write leaves a file that parses as
damage (or worse, parses clean and answers wrong).  The repo's answer is
``repro.resilience.atomic`` — same-directory temp + fsync + ``os.replace``
+ directory fsync — and every durable write is required to go through it.

This rule mechanises the requirement: outside the sanctioned modules
(``repro.resilience.atomic`` itself and the WAL, whose append-only fsync
protocol is the other legitimate writer), any direct write targeting a
durable-artefact path is an error:

- ``open(path, "w"/"wb"/"a"/"ab"/"x"...)`` where the path expression
  mentions an index (``.nrp``), WAL, sidecar, metrics, or baseline
  artefact, and
- ``<path>.write_text(...)`` / ``<path>.write_bytes(...)`` on such a
  path.

Matching is textual over the path *expression* (``ast.unparse``), so
``open(index_path, "w")`` and ``sidecar.write_text(...)`` are both caught
without any type inference.  Scratch writes to unrecognisable paths stay
legal — the rule is a tripwire for the artefacts the resilience suite
actually fuzzes, not a blanket ban on ``open``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register

#: Modules allowed to write durable artefacts directly.
_SANCTIONED = ("repro.resilience.atomic", "repro.resilience.wal")

#: Substrings of a path expression marking a durable artefact.
_MARKERS = ("nrp", "wal", "sidecar", "metrics", "index", "baseline")

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _writes(mode: str) -> bool:
    return bool(set(mode) & set("wax+"))


def _marker_in(text: str) -> str | None:
    lowered = text.lower()
    for marker in _MARKERS:
        if marker in lowered:
            return marker
    return None


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ""


@register
class AtomicWriteRule(Rule):
    name = "atomic-write"
    code = "NRP010"
    summary = "durable artefacts (index/WAL/sidecars) use the atomic writers"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        if any(ctx.module == sanctioned for sanctioned in _SANCTIONED):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_open(ctx, node) or self._check_write_method(
                ctx, node
            )
            if finding is not None:
                yield finding

    def _check_open(self, ctx: FileContext, call: ast.Call) -> Finding | None:
        if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
            return None
        mode = "r"
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            if isinstance(call.args[1].value, str):
                mode = call.args[1].value
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    mode = kw.value.value
        if not _writes(mode):
            return None
        target = call.args[0] if call.args else None
        if target is None:
            return None
        marker = _marker_in(_unparse(target))
        if marker is None:
            return None
        return self.finding(
            ctx,
            call,
            f"open(..., {mode!r}) on a durable artefact path "
            f"(matched {marker!r}); use repro.resilience.atomic."
            "atomic_write_bytes/atomic_write_text so a crash cannot "
            "leave a torn file",
        )

    def _check_write_method(
        self, ctx: FileContext, call: ast.Call
    ) -> Finding | None:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _WRITE_METHODS
        ):
            return None
        marker = _marker_in(_unparse(call.func.value))
        if marker is None:
            return None
        return self.finding(
            ctx,
            call,
            f".{call.func.attr}() on a durable artefact path "
            f"(matched {marker!r}); use repro.resilience.atomic."
            "atomic_write_text/atomic_write_bytes instead",
        )
