"""NRP006 — purity of the dominance/pruning kernels.

Algorithm 2 and Propositions 2/3/5 are specified as pure decision
procedures over immutable label sets; the engine memoises their results
inside query plans, and maintenance replays them after label rebuilds.
A ``dominates*``/``prune*`` function that mutates its arguments or module
state would make cached plans diverge from fresh ones — the exact bug
class the golden suite can only catch after the fact.

Within ``repro.core``, any function whose name matches ``dominates*`` or
``prune*`` (leading underscore allowed) — and, in the kernel backend
modules ``repro.core.kernels.reference`` / ``repro.core.kernels.vector``,
*every* function, since the whole point of that layer is interchangeable
pure columns-in/indices-out procedures — must not:

- declare ``global``/``nonlocal``,
- assign/del through a parameter (``param[i] = ...``, ``param.x = ...``,
  ``param[i] += ...``),
- call mutating methods on a parameter (``append``, ``update``, ...), or
- store through a module-level binding.

Deliberate out-parameters (the observability ``counts`` accumulators)
carry an inline justification instead of weakening the rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, base_name, register

_SCOPE = "repro.core"
_KERNEL_RE = re.compile(r"^_?(dominates|prune)")

#: Backend modules where *every* function is a kernel, not just name
#: matches.  ``repro.core.kernels`` itself (the ``__init__``) is exempt:
#: backend selection legitimately caches module state.
_KERNEL_MODULES = frozenset(
    {"repro.core.kernels.reference", "repro.core.kernels.vector"}
)

_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "sort",
        "reverse",
        "update",
        "add",
        "discard",
        "setdefault",
        "popitem",
        "appendleft",
        "extendleft",
        "popleft",
        "write",
    }
)


def _module_bindings(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
    return names


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = {arg.arg for arg in args.posonlyargs}
    names.update(arg.arg for arg in args.args)
    names.update(arg.arg for arg in args.kwonlyargs)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


@register
class PurityRule(Rule):
    name = "purity"
    code = "NRP006"
    summary = "dominates*/prune* kernels must not mutate args or globals"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(_SCOPE):
            return
        module_names = _module_bindings(ctx.tree)
        all_kernels = ctx.module in _KERNEL_MODULES
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if all_kernels or _KERNEL_RE.match(node.name):
                    yield from self._check_kernel(ctx, node, module_names)

    def _check_kernel(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_names: set[str],
    ) -> Iterator[Finding]:
        params = _param_names(func)
        local_names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local_names.add(node.id)

        def classify(target: ast.AST) -> str | None:
            """Why a store through ``target`` is impure, if it is."""
            if not isinstance(target, (ast.Subscript, ast.Attribute)):
                return None  # plain rebinding of a local is pure
            base = base_name(target)
            if base is None or base in ("self", "cls"):
                return None  # method-local state is its own rule's problem
            if base in params:
                return f"mutates argument {base!r}"
            if base in module_names and base not in local_names:
                return f"mutates module-level state {base!r}"
            return None

        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.finding(
                    ctx,
                    node,
                    f"{func.name} declares {kind} "
                    f"{', '.join(node.names)}; dominance kernels must be pure",
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    reason = classify(target)
                    if reason:
                        yield self.finding(
                            ctx, node, f"{func.name} {reason}; kernels must be pure"
                        )
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                reason = classify(node.target)
                if reason:
                    yield self.finding(
                        ctx, node, f"{func.name} {reason}; kernels must be pure"
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    reason = classify(target)
                    if reason:
                        yield self.finding(
                            ctx, node, f"{func.name} {reason}; kernels must be pure"
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    base = base_name(node.func.value)
                    if base in params:
                        yield self.finding(
                            ctx,
                            node,
                            f"{func.name} calls .{node.func.attr}() on argument "
                            f"{base!r}; kernels must not mutate their inputs",
                        )
                    elif (
                        base is not None
                        and base in module_names
                        and base not in local_names
                        and base not in ("self", "cls")
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{func.name} calls .{node.func.attr}() on "
                            f"module-level {base!r}; kernels must be pure",
                        )
        return
