"""NRP008 — guarded attributes are only read-modify-written under their lock.

PR 8 fixed three shapes of the same bug by hand: the flight ring advanced
``self._ring[i] = rec; self._count += 1`` without its lock, the metric
primitives lost ``+=`` updates under thread churn, and the engine's plan
cache was mutated wholesale.  Every one is mechanically recognisable once
the class's lock ownership is known, so this rule makes the discipline
declarative:

- a class that owns a ``threading.Lock``/``RLock`` attribute declares
  which attributes that lock guards, either explicitly::

      self._count = 0  # nrplint: guarded-by=_lock

  or implicitly — any attribute already written inside ``with
  self._lock:`` in a non-constructor method is inferred guarded;
- every **read-modify-write** of a guarded attribute (``+=``, ``x =
  f(x)``, ``self._ring[i] = rec``) outside a ``with`` block holding that
  lock is an error.  Plain rebinds (``self.value = v``) are atomic under
  the GIL and stay legal, as do all reads — the contract targets lost
  updates, not stale reads.

Cross-object accesses resolve the receiver's type through same-module
constructor calls (``self.stats = ServerStats()`` makes ``self.stats.shed
+= 1`` require ``with self.stats._lock:``); unresolvable receivers fall
back to the module-wide guarded map.  Constructors (``__init__``,
``__new__``, ``__post_init__``) are exempt: an object under construction
is not yet shared.
"""

from __future__ import annotations

from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register
from nrplint.flow import get_flow, held_lock_chains, iter_functions, iter_mutations

_CTOR_NAMES = ("__init__", "__new__", "__post_init__")


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    code = "NRP008"
    summary = "guarded attributes are only read-modify-written under their lock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        flow = get_flow(ctx)
        if not any(cls.guarded for cls in flow.classes.values()):
            return
        for cls_node, func in iter_functions(ctx):
            if func.name in _CTOR_NAMES:
                continue
            cls = flow.classes.get(cls_node.name) if cls_node is not None else None
            for node, receiver, attr, kind in iter_mutations(func):
                lock = self._required_lock(flow, cls, receiver, attr)
                if lock is None:
                    continue
                required = f"{receiver}.{lock}"
                if required in held_lock_chains(ctx, node, flow):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} of {receiver}.{attr} outside its lock; "
                    f"`{attr}` is guarded-by={lock}, wrap the update in "
                    f"`with {required}:`",
                )

    @staticmethod
    def _required_lock(flow, cls, receiver: str, attr: str) -> str | None:
        """The lock name guarding ``receiver.attr``, or None when unguarded."""
        if receiver == "self":
            if cls is None:
                return None
            return cls.guarded.get(attr)
        # Typed one-hop receiver: ``self.stats`` → ServerStats.
        parts = receiver.split(".")
        if cls is not None and parts[0] == "self" and len(parts) == 2:
            type_name = cls.attr_types.get(parts[1])
            target = flow.classes.get(type_name) if type_name else None
            if target is not None:
                return target.guarded.get(attr)
        # Unresolved receiver: only flag attributes some class in this
        # module declares guarded AND no class owns unguarded (avoids
        # cross-class name collisions producing noise).
        lock = flow.guarded_anywhere(attr)
        if lock is None:
            return None
        unguarded_owner = any(
            attr in c.owns and attr not in c.guarded
            for c in flow.classes.values()
        )
        return None if unguarded_owner else lock
