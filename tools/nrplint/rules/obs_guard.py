"""NRP004 — observability stays behind the enabled guard in core.

``docs/observability.md`` commits to a <2% overhead budget when
observation is off: the hot path may only pay cheap ``enabled`` boolean
checks.  Two emission styles satisfy that in ``repro.core``:

- metric emission (``handle.inc(...)``, ``handle.observe(...)``,
  ``registry.gauge(...).set(...)``) and flight-recorder emission
  (``flight.record(...)``) lexically inside an ``if <...>.enabled:``
  block, and
- the guarded span API — ``with tracer.span(...):`` — whose context
  manager is a no-op when tracing is off (``span.set(...)`` on the
  yielded handle is likewise free).

This rule flags metric emission in ``repro.core`` that is *not* under an
``enabled`` conditional.  Resolving handles eagerly (``reg.counter(...)``
in ``__init__``) is fine and encouraged; only the emission site needs the
guard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register

_SCOPE = "repro.core"

#: Unambiguous metric-emission methods.
_EMIT_METHODS = frozenset({"inc", "observe"})


def _is_gauge_receiver(node: ast.AST) -> bool:
    """True for ``registry.gauge(...)`` chains or ``*_g_*``/gauge names."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr == "gauge"
    last: str | None = None
    if isinstance(node, ast.Attribute):
        last = node.attr
    elif isinstance(node, ast.Name):
        last = node.id
    if last is None:
        return False
    return last.startswith("_g_") or "gauge" in last.lower()


def _is_flight_receiver(node: ast.AST) -> bool:
    """True for flight-recorder-shaped receivers: ``self._flight``,
    ``flight``, or a ``get_flight_recorder()`` call chain."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return "flight" in func.attr.lower()
        if isinstance(func, ast.Name):
            return "flight" in func.id.lower()
        return False
    last: str | None = None
    if isinstance(node, ast.Attribute):
        last = node.attr
    elif isinstance(node, ast.Name):
        last = node.id
    if last is None:
        return False
    return "flight" in last.lower()


def _test_mentions_enabled(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id == "enabled":
            return True
    return False


@register
class ObsGuardRule(Rule):
    name = "obs-guard"
    code = "NRP004"
    summary = "core metric emission must sit behind an `enabled` check"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            receiver = node.func.value
            if attr in _EMIT_METHODS:
                emission = True
            elif attr == "set":
                # `.set(...)` is ambiguous (spans, CovarianceStore, dicts);
                # only gauge-shaped receivers count as metric emission.
                emission = _is_gauge_receiver(receiver)
            elif attr == "record":
                # `.record(...)` is flight-recorder emission only on
                # flight-shaped receivers (WAL/log objects also record).
                emission = _is_flight_receiver(receiver)
            else:
                emission = False
            if not emission:
                continue
            if any(
                isinstance(ancestor, ast.If)
                and _test_mentions_enabled(ancestor.test)
                for ancestor in ctx.ancestors(node)
            ):
                continue
            yield self.finding(
                ctx,
                node,
                f"metric emission .{attr}() outside an `if ....enabled:` "
                f"guard; unguarded emission in repro.core breaks the <2% "
                f"observability overhead budget",
            )
