"""NRP003 — float equality discipline in the dominance arithmetic.

The correctness of Propositions 1-5 rests on exact comparisons over
``(mu, sigma)`` pairs; an ``==``/``!=`` between floats is almost always a
latent tolerance bug (two mathematically equal quantities computed along
different float paths compare unequal, silently changing which paths
dominate).  Inside ``repro.core`` and ``repro.stats`` every float
equality must therefore either be rewritten (ordering compare, integer
compare, ``math.isclose`` with an explicit tolerance) or carry a
``# nrplint: disable=float-eq -- reason`` justification arguing why the
*exact* IEEE compare is the intended semantics (e.g. an exact sentinel
such as ``alpha == 0.5``, where Phi^-1 symmetry maps the exact literal to
the exact result and any tolerance would corrupt nearby alphas).

Detection is lexical: an operand is float-typed when it is a float
literal, a ``float(...)`` cast, a name or ``self.`` attribute annotated
``float`` in an enclosing scope, or an arithmetic expression over such
operands.  That is deliberately conservative — missing a float compare is
acceptable, crying wolf on int compares is not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register

_SCOPES = ("repro.core", "repro.stats")


def _annotation_is_float(annotation: ast.AST | None) -> bool:
    """True when an annotation mentions ``float`` (covers ``float | None``)."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "float" in annotation.value
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "float":
            return True
    return False


class _FloatNames:
    """Float-annotated names visible at one node (params + AnnAssigns)."""

    def __init__(self, ctx: FileContext, node: ast.AST) -> None:
        self.names: set[str] = set()
        self.self_attrs: set[str] = set()
        scope: ast.AST | None = node
        while scope is not None:
            scope = ctx.parents.get(scope)
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = scope.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    if _annotation_is_float(arg.annotation):
                        self.names.add(arg.arg)
                for sub in ast.walk(scope):
                    if isinstance(sub, ast.AnnAssign) and _annotation_is_float(
                        sub.annotation
                    ):
                        if isinstance(sub.target, ast.Name):
                            self.names.add(sub.target.id)
            elif isinstance(scope, ast.ClassDef):
                for sub in ast.walk(scope):
                    if isinstance(sub, ast.AnnAssign) and _annotation_is_float(
                        sub.annotation
                    ):
                        target = sub.target
                        if isinstance(target, ast.Name):
                            self.self_attrs.add(target.id)
                        elif (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.self_attrs.add(target.attr)
            elif isinstance(scope, ast.Module):
                for stmt in scope.body:
                    if isinstance(stmt, ast.AnnAssign) and _annotation_is_float(
                        stmt.annotation
                    ):
                        if isinstance(stmt.target, ast.Name):
                            self.names.add(stmt.target.id)

    def floaty(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.self_attrs
        if isinstance(node, ast.BinOp):
            return self.floaty(node.left) or self.floaty(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.floaty(node.operand)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            if isinstance(func, ast.Attribute) and func.attr in ("sqrt", "fsum"):
                return True
        return False


@register
class FloatEqRule(Rule):
    name = "float-eq"
    code = "NRP003"
    summary = "no exact float ==/!= in core/stats (Props. 1-5 arithmetic)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(ctx.in_package(scope) for scope in _SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            names: _FloatNames | None = None
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    if names is None:
                        names = _FloatNames(ctx, node)
                    if names.floaty(left) or names.floaty(right):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            ctx,
                            node,
                            f"exact float {symbol} compare; use an ordering "
                            f"compare, math.isclose, or justify the exact "
                            f"sentinel with a disable comment",
                        )
                left = right
