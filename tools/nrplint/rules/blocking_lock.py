"""NRP009 — no blocking calls while a lock is held in ``serve``/``obs``.

The serving plane's latency contract (micro-batching beats one-per-request
only if workers never stall each other) and the observability overhead
budgets (<3% armed) both die the same way: a thread parks *inside* a
critical section.  A ``time.sleep`` under the metrics lock serialises
every worker behind it; a ``queue.get()`` with no timeout under the ring
lock can deadlock shutdown outright.

Inside any ``with <lock>:`` block in ``repro.serve`` / ``repro.obs`` the
rule flags, directly or **one call-hop deep** through a same-module
function/method/constructor:

- ``time.sleep(...)``
- ``open(...)`` and ``Path.read_*``/``write_*`` file I/O
- socket operations (``recv``/``accept``/``connect``/``sendall``)
- ``.get()`` / ``.wait()`` / ``.join()`` with no timeout (or an explicit
  ``timeout=None``) — the unbounded-blocking forms; ``q.get(timeout=t)``
  and ``event.wait(t)`` stay legal.

The fix is the snapshot idiom the tree already uses: copy the shared
state under the lock, do the slow work outside it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, dotted_name, register
from nrplint.flow import (
    ModuleFlow,
    get_flow,
    iter_functions,
    walk_local,
    with_lock_chains,
)

_SCOPES = ("repro.serve", "repro.obs")

_SOCKET_OPS = frozenset({"recv", "recv_into", "accept", "connect", "sendall"})
_FILE_OPS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)
_TIMEOUT_OPS = frozenset({"get", "wait", "join"})


def _in_scope(ctx: FileContext) -> bool:
    return any(ctx.in_package(scope) for scope in _SCOPES)


def _lacks_timeout(call: ast.Call) -> bool:
    """True for the unbounded form: no positional args and no timeout kw."""
    if call.args:
        return False
    for kw in call.keywords:
        if kw.arg == "timeout":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True


def _direct_blocking(call: ast.Call) -> str | None:
    """A human-readable description when ``call`` is a blocking primitive."""
    dotted = dotted_name(call.func)
    if dotted is not None and dotted.split(".")[-1] == "sleep":
        return "time.sleep()"
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return "file I/O (open())"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in _SOCKET_OPS:
            return f"socket .{attr}()"
        if attr in _FILE_OPS:
            return f"file I/O (.{attr}())"
        if attr in _TIMEOUT_OPS and _lacks_timeout(call):
            return f".{attr}() with no timeout"
    return None


def _resolve_callee(
    call: ast.Call,
    flow: ModuleFlow,
    cls_name: str | None,
) -> tuple[str, ast.AST] | None:
    """Same-module callee body for the one-hop check, if resolvable."""
    func = call.func
    if isinstance(func, ast.Name):
        target = flow.functions.get(func.id)
        if target is not None:
            return func.id, target
        target_cls = flow.classes.get(func.id)
        if target_cls is not None:
            ctor = target_cls.methods.get("__init__")
            if ctor is not None:
                return f"{func.id}()", ctor
    elif (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and cls_name is not None
    ):
        cls = flow.classes.get(cls_name)
        if cls is not None:
            method = cls.methods.get(func.attr)
            if method is not None:
                return f"self.{func.attr}", method
    return None


@register
class BlockingLockRule(Rule):
    name = "blocking-lock"
    code = "NRP009"
    summary = "no blocking I/O, sleeps, or unbounded waits while a lock is held"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        flow = get_flow(ctx)
        for cls_node, func in iter_functions(ctx):
            cls_name = cls_node.name if cls_node is not None else None
            for stmt in walk_local(func):
                if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                    continue
                locks = with_lock_chains(stmt, flow)
                if not locks:
                    continue
                yield from self._check_region(ctx, stmt, locks[0], flow, cls_name)

    def _check_region(
        self,
        ctx: FileContext,
        region: ast.With | ast.AsyncWith,
        lock: str,
        flow: ModuleFlow,
        cls_name: str | None,
    ) -> Iterator[Finding]:
        for body_stmt in region.body:
            for node in walk_local(body_stmt):
                if not isinstance(node, ast.Call):
                    continue
                direct = _direct_blocking(node)
                if direct is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{direct} while holding `{lock}`; snapshot under "
                        "the lock, block outside it",
                    )
                    continue
                resolved = _resolve_callee(node, flow, cls_name)
                if resolved is None:
                    continue
                callee_name, callee = resolved
                for inner in walk_local(callee):
                    if isinstance(inner, ast.Call):
                        nested = _direct_blocking(inner)
                        if nested is not None:
                            yield self.finding(
                                ctx,
                                node,
                                f"{callee_name} performs {nested} (one hop) "
                                f"while `{lock}` is held; move the call "
                                "outside the lock",
                            )
                            break
