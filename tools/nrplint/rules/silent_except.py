"""NRP007 — no silent exception swallowing in the reliability kernel.

``docs/resilience.md`` commits to "zero silent wrong-answer loads": a
damaged index file, a torn WAL, or an injected fault must surface as a
typed error, never vanish into a handler that hides it — and since the
serving plane landed, the same goes for a worker thread that swallows a
failure (one shed request becomes a hung connection) or an observability
export that hides one (the perf gate then diffs corrupt artefacts).  Two
handler shapes defeat that contract inside ``repro.core``,
``repro.resilience``, ``repro.serve``, and ``repro.obs``:

- a **bare** ``except:`` — it catches ``BaseException``, including the
  fault harness's :class:`repro.resilience.errors.InjectedCrash`, which
  is a ``BaseException`` subclass *precisely so it cannot be caught by
  accident*; a bare clause re-hides it, and is flagged regardless of
  body, and
- a **silent broad** handler — ``except Exception:`` (or
  ``BaseException``) whose body does nothing but ``pass`` / ``...``,
  which converts any failure into an apparent success.

Narrow, typed handlers (``except OSError:`` with a retry, ``except
ValueError:`` re-raised as taxonomy) are the encouraged style and are
never flagged; a broad handler that *acts* (logs, re-raises, returns a
sentinel) is also fine.  Where a genuinely-justified swallow exists, use
the standard escape hatch with a reason::

    except Exception:  # nrplint: disable=silent-except -- best-effort cache warm
        pass
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register

_SCOPES = ("repro.core", "repro.resilience", "repro.serve", "repro.obs")

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _in_scope(ctx: FileContext) -> bool:
    return any(ctx.in_package(scope) for scope in _SCOPES)


def _catches_broad(type_node: ast.AST) -> bool:
    """True when the clause catches ``Exception``/``BaseException``."""
    elements = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    for element in elements:
        if isinstance(element, ast.Name) and element.id in _BROAD_NAMES:
            return True
        if isinstance(element, ast.Attribute) and element.attr in _BROAD_NAMES:
            return True
    return False


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler body is only ``pass`` / ``...`` (a swallow)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is ...
        ):
            continue
        return False
    return True


@register
class SilentExceptRule(Rule):
    name = "silent-except"
    code = "NRP007"
    summary = (
        "no bare `except:` or silent `except Exception: pass` in "
        "core/resilience/serve/obs"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches BaseException (including the fault "
                    "harness's InjectedCrash); name the exceptions or use a "
                    "justified suppression",
                )
            elif _catches_broad(node.type) and _is_silent(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "silent broad handler swallows every failure; handle a "
                    "typed exception, act on it, or add a justified "
                    "suppression",
                )
