"""NRP005 — no ``_private`` reach across module boundaries.

A leading underscore marks implementation detail that its own module may
reorganise at will; cross-module consumers of ``_names`` turn every such
refactor into a breaking change.  Two lexically detectable shapes are
flagged anywhere under ``repro``:

- ``from repro.x import _thing`` — importing a private name from another
  module (type-only imports included: annotations are API too), and
- ``mod._thing`` attribute access where ``mod`` (or a class) was bound by
  an import from a ``repro`` module.

Dunder names (``__init__``-style) are exempt, as is everything accessed
through ``self``/``cls`` or locally created objects — instance privates
inside their own class and module privates inside their own module are
exactly what underscores are for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register

_SCOPE = "repro"


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


@register
class PrivateAccessRule(Rule):
    name = "private-access"
    code = "NRP005"
    summary = "no _underscore names imported or reached across modules"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(_SCOPE):
            return
        imported: set[str] = set()  # local names bound by repro imports
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                is_repro = node.level > 0 or module == _SCOPE or module.startswith(
                    _SCOPE + "."
                )
                for alias in node.names:
                    if is_repro and _is_private(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"imports private name {alias.name!r} from "
                            f"{module or '.' * node.level}; private names are "
                            f"module-internal — promote it to a public name "
                            f"or go through the owning module's API",
                        )
                    if is_repro:
                        imported.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _SCOPE or alias.name.startswith(_SCOPE + "."):
                        imported.add(alias.asname or alias.name.split(".")[0])

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not _is_private(node.attr):
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in imported:
                yield self.finding(
                    ctx,
                    node,
                    f"reaches into private attribute .{node.attr} of imported "
                    f"name {value.id!r}; cross-module privates are not API",
                )
