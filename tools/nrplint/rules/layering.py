"""NRP001 — the import-layering contract.

``docs/architecture.md`` fixes a storage / engine / service split inside
``repro.core`` and a dependency direction for the top-level packages:

- ``repro.core`` is the index kernel; the service and consumer layers
  (``cli``, ``experiments``, ``viz``, ``baselines``, ``validation``,
  ``extensions``) sit above it and must never be imported from below.
- Within core, the storage modules (``labelstore``, ``pruning``,
  ``pathsummary``) must not reach up into the engine or service modules.
- ``repro.obs`` is a standalone leaf: core may call into it (that is the
  instrumentation direction), but obs importing core would create a cycle
  and couple the observability plane to the index internals.
- ``repro.stats`` is a pure numeric leaf (Props. 1-5 arithmetic only);
  ``repro.treedec`` may see ``repro.network`` but nothing higher.
- ``repro.core.kernels`` sits just above that leaf: the backends may
  import only ``repro.stats`` (numpy is gated in the package
  ``__init__``), so storage and engine can call down into them without
  ever creating a cycle.
- ``repro.resilience`` is the crash-safety substrate ``repro.core``
  builds on (atomic writes, WAL, failpoints); it may see only
  ``repro.network`` and ``repro.obs``, so depending on it can never
  create a cycle.
- ``repro.serve`` (the query daemon) sits above the kernel: it may
  import ``repro.core``, ``repro.obs``, ``repro.resilience``, and
  ``repro.network``, but never the cli/experiments/viz consumers — and
  nothing in core may import it back.
- Within the serving plane, ``repro.serve.health`` (state machine +
  circuit breaker) is pure mechanism and may import only ``repro.obs``;
  ``repro.serve.lifecycle`` (verified open, WAL recovery, hot reload)
  may see core/resilience/obs/network but never ``serve.server`` or
  ``serve.client``, which import *it*.

Imports under ``if TYPE_CHECKING:`` are exempt — they express annotations,
not a runtime dependency, and cannot create import cycles.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, register

_CORE_STORAGE_FORBIDDEN = (
    "repro.core.engine",
    "repro.core.index",
    "repro.core.construction",
    "repro.core.maintenance",
    "repro.core.serialization",
    "repro.core.query",
    "repro.core.multiquery",
    "repro.core.explain",
    "repro.core.analysis",
    "repro.core.change_detection",
    "repro.core.refine",
)


@dataclass(frozen=True)
class Contract:
    """One layering clause: a scope plus a forbidden- or allowed-list.

    ``forbidden`` names prefixes the scope must not import; ``allowed``
    (leaf form) names the only ``repro``-internal prefixes the scope may
    import — the scope itself is always implicitly allowed.
    """

    scope: str
    reason: str
    forbidden: tuple[str, ...] = ()
    allowed: tuple[str, ...] | None = None

    def violation(self, module: str, target: str) -> str | None:
        if not _under(module, self.scope):
            return None
        for prefix in self.forbidden:
            if _under(target, prefix):
                return (
                    f"{self.scope} must not import {prefix} ({self.reason}); "
                    f"imports {target}"
                )
        if self.allowed is not None and _under(target, "repro"):
            permitted = (self.scope,) + self.allowed
            if not any(_under(target, prefix) for prefix in permitted):
                return (
                    f"{self.scope} may only import "
                    f"{', '.join(permitted)} ({self.reason}); imports {target}"
                )
        return None


def _under(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


CONTRACTS: tuple[Contract, ...] = (
    Contract(
        scope="repro.core",
        forbidden=(
            "repro.cli",
            "repro.experiments",
            "repro.viz",
            "repro.baselines",
            "repro.validation",
            "repro.extensions",
            "repro.serve",
        ),
        reason="core is the index kernel; service/consumer layers sit above it",
    ),
    Contract(
        scope="repro.core.labelstore",
        forbidden=_CORE_STORAGE_FORBIDDEN,
        reason="storage must not reach up into engine/service modules",
    ),
    Contract(
        scope="repro.core.pruning",
        forbidden=_CORE_STORAGE_FORBIDDEN,
        reason="storage must not reach up into engine/service modules",
    ),
    Contract(
        scope="repro.core.pathsummary",
        forbidden=_CORE_STORAGE_FORBIDDEN,
        reason="storage must not reach up into engine/service modules",
    ),
    Contract(
        scope="repro.core.kernels",
        allowed=("repro.stats",),
        reason=(
            "kernels are pure columns-in/indices-out procedures over the "
            "stats leaf; storage and engine layers call down into them"
        ),
    ),
    Contract(
        scope="repro.obs",
        allowed=(),
        reason="obs is a standalone leaf the rest of the tree reports into",
    ),
    Contract(
        scope="repro.stats",
        allowed=(),
        reason="stats is the pure Props. 1-5 numeric leaf",
    ),
    Contract(
        scope="repro.treedec",
        allowed=("repro.network",),
        reason="tree decomposition sees the graph layer and nothing higher",
    ),
    Contract(
        scope="repro.resilience",
        allowed=("repro.network", "repro.obs"),
        reason="resilience is the crash-safety substrate core builds on",
    ),
    Contract(
        scope="repro.serve",
        allowed=("repro.core", "repro.obs", "repro.resilience", "repro.network"),
        reason=(
            "the serving plane wraps the index kernel; it must not reach "
            "sideways into cli/experiments/viz consumers"
        ),
    ),
    Contract(
        scope="repro.serve.health",
        allowed=("repro.obs",),
        reason=(
            "the health state machine and circuit breaker are pure "
            "mechanism: no engine, no sockets, no lifecycle — the server "
            "feeds them signals, tests feed them fakes"
        ),
    ),
    Contract(
        scope="repro.serve.lifecycle",
        allowed=("repro.core", "repro.resilience", "repro.obs", "repro.network"),
        forbidden=("repro.serve.server", "repro.serve.client"),
        reason=(
            "index lifecycle (verified open, WAL recovery, hot reload) "
            "sits below the server that imports it; reaching back up "
            "would cycle the serving plane"
        ),
    ),
)


def _import_targets(node: ast.AST, package: str) -> list[list[str]]:
    """Candidate chains, one per imported binding.

    Each chain is scanned until its first violating entry, which is the
    one reported (duplicate messages across chains collapse).  So
    ``from repro.cli import main`` reports the module once, while
    ``from repro import experiments, viz`` (where ``repro`` itself is
    fine) still reports each offending submodule binding.
    """
    if isinstance(node, ast.Import):
        return [[alias.name] for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:  # resolve `from .x import y` against the package
            parts = package.split(".")
            parts = parts[: len(parts) - (node.level - 1)]
            base = ".".join(parts)
            module = f"{base}.{node.module}" if node.module else base
        else:
            module = node.module or ""
        return [
            [module, f"{module}.{alias.name}"] for alias in node.names
        ]
    return []


@register
class LayeringRule(Rule):
    name = "layering"
    code = "NRP001"
    summary = "storage/engine/service import contract; stats & obs stay leaves"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        package = ctx.package
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if ctx.in_type_checking(node):
                continue
            seen: set[str] = set()
            for chain in _import_targets(node, package):
                for target in chain:
                    messages = [
                        message
                        for contract in CONTRACTS
                        if (message := contract.violation(ctx.module, target))
                    ]
                    if messages:
                        for message in messages:
                            if message not in seen:
                                seen.add(message)
                                yield self.finding(ctx, node, message)
                        break  # deeper candidates restate the same import
