"""Rule catalogue — importing this package registers every rule.

| code   | name             | invariant                                            |
|--------|------------------|------------------------------------------------------|
| NRP001 | layering         | storage/engine/service split; stats & obs stay leaves|
| NRP002 | determinism      | no ambient RNG or wall-clock in the numeric kernel   |
| NRP003 | float-eq         | no exact float ==/!= in the dominance arithmetic     |
| NRP004 | obs-guard        | core metric emission sits behind the enabled guard   |
| NRP005 | private-access   | no _private reach across module boundaries           |
| NRP006 | purity           | dominates*/prune* kernels are side-effect free       |
| NRP007 | silent-except    | no bare/silent broad excepts in core/resilience/serve/obs |
| NRP008 | lock-discipline  | guarded attrs only read-modify-written under their lock |
| NRP009 | blocking-lock    | no blocking I/O or unbounded waits while a lock is held |
| NRP010 | atomic-write     | durable artefacts go through repro.resilience.atomic |
| NRP011 | param-threading  | deadline_s/backend forwarded through internal fan-out |
"""

from __future__ import annotations

from nrplint.rules import (  # noqa: F401  (registration side effects)
    atomic_write,
    blocking_lock,
    determinism,
    float_eq,
    layering,
    lock_discipline,
    obs_guard,
    param_threading,
    private_access,
    purity,
    silent_except,
)
