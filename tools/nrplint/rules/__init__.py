"""Rule catalogue — importing this package registers every rule.

| code   | name           | invariant                                              |
|--------|----------------|--------------------------------------------------------|
| NRP001 | layering       | storage/engine/service split; stats & obs stay leaves  |
| NRP002 | determinism    | no ambient RNG or wall-clock in the numeric kernel     |
| NRP003 | float-eq       | no exact float ==/!= in the dominance arithmetic       |
| NRP004 | obs-guard      | core metric emission sits behind the enabled guard     |
| NRP005 | private-access | no _private reach across module boundaries             |
| NRP006 | purity         | dominates*/prune* kernels are side-effect free         |
| NRP007 | silent-except  | no bare/silent broad excepts in core & resilience      |
"""

from __future__ import annotations

from nrplint.rules import (  # noqa: F401  (registration side effects)
    determinism,
    float_eq,
    layering,
    obs_guard,
    private_access,
    purity,
    silent_except,
)
