"""NRP002 — reproducibility of the numeric kernel.

Query answers and index contents must be bit-identical across runs (the
golden engine suite depends on it), so inside ``repro.core``,
``repro.stats``, ``repro.treedec``, and ``repro.resilience`` (whose
fault schedules must replay exactly) nothing may read ambient
nondeterminism:

- no module-level RNG (``random.random()``, ``random.shuffle()``, ...):
  randomness must be *injected* as a ``random.Random`` instance so the
  caller owns the seed (``random.Random(seed)`` is therefore allowed),
- no wall-clock reads that could leak into results — ``time.time()``,
  ``datetime.now()`` and friends, ``uuid.uuid1/4``, ``secrets``, and
  ``os.urandom`` (``time.perf_counter``/``monotonic`` stay legal: the
  observability layer uses them for durations that never feed back into
  query values).
"""

from __future__ import annotations

import ast
from typing import Iterator

from nrplint.core import FileContext, Finding, Rule, dotted_name, register

_SCOPES = ("repro.core", "repro.stats", "repro.treedec", "repro.resilience")

#: ``random`` module-level functions that consume the shared global RNG.
_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "triangular",
        "binomialvariate",
        "getrandbits",
        "seed",
    }
)

#: Wall-clock / entropy calls, as flattened dotted suffixes.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)

_SECRETS_MODULE = "secrets"


@register
class DeterminismRule(Rule):
    name = "determinism"
    code = "NRP002"
    summary = "no ambient RNG or wall-clock reads in core/stats/treedec"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(ctx.in_package(scope) for scope in _SCOPES):
            return
        # Names bound by `from random import shuffle`-style imports.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _RANDOM_FUNCS:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of the shared global RNG "
                            f"(random.{alias.name}); inject a seeded "
                            f"random.Random instance instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        yield self.finding(
                            ctx,
                            node,
                            "wall-clock import (time.time); results must not "
                            "depend on the clock (perf_counter is fine for "
                            "durations)",
                        )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                names = (
                    [alias.name for alias in node.names]
                    if isinstance(node, ast.Import)
                    else [node.module or ""]
                )
                if any(
                    n == _SECRETS_MODULE or n.startswith(_SECRETS_MODULE + ".")
                    for n in names
                ):
                    yield self.finding(
                        ctx, node, "secrets is entropy-backed and never reproducible"
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        # random.shuffle(...) / np.random.shuffle(...): module-level RNG.
        if len(parts) >= 2 and parts[-2] == "random" and parts[-1] in _RANDOM_FUNCS:
            yield self.finding(
                ctx,
                node,
                f"call to the shared global RNG ({dotted}); inject a seeded "
                f"random.Random (or numpy Generator) instead",
            )
            return
        suffix = ".".join(parts[-2:])
        if suffix in _CLOCK_CALLS or parts[0] == _SECRETS_MODULE:
            yield self.finding(
                ctx,
                node,
                f"nondeterministic call {dotted}(); results must be "
                f"bit-identical across runs (golden suite)",
            )
