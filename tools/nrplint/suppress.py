"""Inline suppression directives, parsed from comments with ``tokenize``.

Three forms are recognised (rule lists are comma-separated; ``all`` waives
every rule):

``# nrplint: disable=RULE[,RULE...] -- reason``
    Trailing comment: waives the named rules on that physical line.

``# nrplint: disable-next-line=RULE[,RULE...] -- reason``
    Comment-only line: waives the named rules on the next line that
    carries code (stacked directives all bind to the same line).

``# nrplint: disable-file=RULE[,RULE...] -- reason``
    Anywhere in the file: waives the named rules for the whole file.

The ``-- reason`` justification is part of the contract: the engine treats
a directive without one as inactive (the finding stays visible with a
hint), so every waiver in the tree documents *why* the invariant does not
apply.  This mirrors how the paper-level invariants themselves work — an
exact float compare or an argument-mutating prune kernel is only
acceptable with an argument for its correctness.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Directive", "Suppressions", "parse_suppressions"]

_DIRECTIVE_RE = re.compile(
    r"#\s*nrplint:\s*(?P<kind>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_*,\s\-]+?)\s*(?:--\s*(?P<reason>.+?)\s*)?$"
)


@dataclass(frozen=True)
class Directive:
    """One parsed directive (``reason`` may be empty → inactive)."""

    kind: str
    rules: frozenset[str]
    reason: str
    line: int

    def covers(self, rule: str) -> bool:
        return "all" in self.rules or rule in self.rules


class Suppressions:
    """Per-file directive index with line-level lookup."""

    def __init__(
        self, by_line: dict[int, list[Directive]], file_wide: list[Directive]
    ) -> None:
        self._by_line = by_line
        self._file_wide = file_wide

    def lookup(self, rule: str, line: int) -> Directive | None:
        """The directive waiving ``rule`` at ``line``, if any."""
        for directive in self._by_line.get(line, ()):
            if directive.covers(rule):
                return directive
        for directive in self._file_wide:
            if directive.covers(rule):
                return directive
        return None

    def all_directives(self) -> list[Directive]:
        out = list(self._file_wide)
        for directives in self._by_line.values():
            out.extend(directives)
        return sorted(out, key=lambda d: d.line)


def parse_suppressions(source: str) -> Suppressions:
    """Tokenize ``source`` and index its nrplint directives."""
    comments: list[tuple[int, str]] = []  # (line, text)
    code_lines: list[int] = []  # lines carrying at least one code token
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return Suppressions({}, [])
    skip = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.string))
        elif tok.type not in skip:
            code_lines.append(tok.start[0])
    code_lines = sorted(set(code_lines))

    by_line: dict[int, list[Directive]] = {}
    file_wide: list[Directive] = []
    for line, text in comments:
        match = _DIRECTIVE_RE.match(text.strip())
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rules:
            continue
        directive = Directive(
            kind=match.group("kind"),
            rules=rules,
            reason=(match.group("reason") or "").strip(),
            line=line,
        )
        if directive.kind == "disable-file":
            file_wide.append(directive)
        elif directive.kind == "disable-next-line":
            target = next((ln for ln in code_lines if ln > line), None)
            if target is not None:
                by_line.setdefault(target, []).append(directive)
        else:
            by_line.setdefault(line, []).append(directive)
    return Suppressions(by_line, file_wide)
