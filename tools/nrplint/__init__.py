"""nrplint — repo-specific static analysis for the NRP reproduction.

A zero-dependency (``ast`` + ``tokenize``) analyzer that machine-checks the
architectural contracts this codebase relies on but that no general-purpose
linter knows about:

- the storage / engine / service layering of ``repro.core`` and the
  leaf-status of ``repro.stats`` / ``repro.obs`` (``layering``),
- reproducibility of index construction and queries — no ambient RNG or
  wall-clock reads in the numeric kernel (``determinism``),
- the exact dominance arithmetic of Propositions 1-5, where a stray float
  ``==`` silently breaks bit-identical results (``float-eq``),
- the <2% observability overhead budget: metric emission in ``repro.core``
  must sit behind the ``enabled`` guard (``obs-guard``),
- module encapsulation (``private-access``) and the purity of the
  dominance/pruning kernels (``purity``).

Run it with ``PYTHONPATH=tools python -m nrplint src``.  See
``docs/static_analysis.md`` for the rule catalogue, the suppression syntax
(``# nrplint: disable=RULE -- reason``) and the baseline workflow.
"""

from __future__ import annotations

from nrplint.core import FileContext, Finding, Rule, RunResult, lint_paths, rule_registry

__version__ = "1.0.0"

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "RunResult",
    "lint_paths",
    "rule_registry",
    "__version__",
]
