"""``python -m nrplint`` entry point."""

from __future__ import annotations

import sys

from nrplint.cli import main

if __name__ == "__main__":
    sys.exit(main())
