"""The grandfathered-findings baseline.

A baseline entry matches on ``(rule, path, snippet)`` — the stripped
source line, not its line number — so unrelated edits above a finding do
not churn the file.  Multiple identical lines in one file are handled by
counting: a baseline entry with ``count: 2`` absorbs at most two matching
findings; a third is reported as new.

The shipped baseline (``tools/nrplint/baseline.json``) is kept minimal —
every finding the six rules raise against the current tree is either
fixed or carries an inline ``# nrplint: disable`` justification, so the
baseline exists for future grandfathering, not as a dumping ground.
Regenerate with ``PYTHONPATH=tools python -m nrplint src --update-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from nrplint.core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

_VERSION = 1


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, finding.path, finding.snippet)


class Baseline:
    """A multiset of grandfathered findings."""

    def __init__(self, entries: Counter[tuple[str, str, str]] | None = None) -> None:
        self.entries: Counter[tuple[str, str, str]] = entries or Counter()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        document = json.loads(path.read_text(encoding="utf-8"))
        if document.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {document.get('version')!r}"
            )
        entries: Counter[tuple[str, str, str]] = Counter()
        for entry in document.get("entries", ()):
            key = (entry["rule"], entry["path"], entry["snippet"])
            entries[key] += int(entry.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(_key(f) for f in findings))

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": rel, "snippet": snippet, "count": count}
            for (rule, rel, snippet), count in sorted(self.entries.items())
        ]
        document = {"version": _VERSION, "tool": "nrplint", "entries": entries}
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into ``(new, baselined)`` with count-aware matching."""
        budget = Counter(self.entries)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = _key(finding)
            if budget[key] > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.entries.values())
