"""The nrplint engine: file contexts, the rule registry, and the runner.

A :class:`FileContext` wraps one parsed source file with everything rules
need — the AST, a child→parent map, the dotted module name (computed by
ascending ``__init__.py`` packages, so ``src/repro/core/engine.py`` is
``repro.core.engine`` regardless of the checkout location), per-line
suppression directives, and small shared helpers (``TYPE_CHECKING``
detection, attribute-chain flattening, enclosing-scope lookup).

Rules are singletons registered by :func:`register`; each yields
:class:`Finding` objects from :meth:`Rule.check`.  :func:`lint_paths`
drives the whole pass and splits raw findings into *active* /
*suppressed* buckets (baseline filtering happens one level up, in the
CLI, because only it knows which baseline file to honour).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from nrplint.suppress import Suppressions, parse_suppressions

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RunResult",
    "register",
    "rule_registry",
    "lint_paths",
    "iter_python_files",
    "module_name_for",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule slug, e.g. ``"float-eq"``
    code: str  #: stable display code, e.g. ``"NRP003"``
    path: str  #: posix-style path as given on the command line
    line: int
    col: int
    message: str
    snippet: str = ""  #: the stripped source line (baseline fingerprint key)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class RunResult:
    """Everything one lint pass produced, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)  #: active findings
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  #: unparseable files
    files: int = 0


def module_name_for(path: Path) -> str:
    """Dotted module name, found by ascending ``__init__.py`` packages."""
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


class FileContext:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, path: Path, display_path: str | None = None) -> None:
        self.path = path
        self.display = display_path if display_path is not None else path.as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.module = module_name_for(path)
        # The package relative imports resolve against: the module itself
        # for an ``__init__.py``, its parent otherwise.
        if path.stem == "__init__" or "." not in self.module:
            self.package = self.module
        else:
            self.package = self.module.rsplit(".", 1)[0]
        self.tree = ast.parse(self.source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.suppressions: Suppressions = parse_suppressions(self.source)

    # ------------------------------------------------------------------
    # Shared AST helpers
    # ------------------------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def in_type_checking(self, node: ast.AST) -> bool:
        """True when ``node`` sits under an ``if TYPE_CHECKING:`` block."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.If) and _mentions_name(
                ancestor.test, "TYPE_CHECKING"
            ):
                return True
        return False

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def in_package(self, prefix: str) -> bool:
        """True when this file's module is ``prefix`` or below it."""
        return self.module == prefix or self.module.startswith(prefix + ".")


def _mentions_name(node: ast.AST, name: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == name:
            return True
    return False


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains; None for non-name bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def base_name(node: ast.AST) -> str | None:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class Rule:
    """Base class for nrplint rules (stateless singletons)."""

    name: str = ""
    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            code=self.code,
            path=ctx.display,
            line=line,
            col=col,
            message=message,
            snippet=ctx.snippet_at(line),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule singleton."""
    if not cls.name or not cls.code:
        raise ValueError(f"rule {cls.__name__} must define 'name' and 'code'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def rule_registry() -> dict[str, Rule]:
    """All registered rules, importing the bundled rule modules on demand."""
    import nrplint.rules  # noqa: F401  (registers via @register side effects)

    return dict(_REGISTRY)


def iter_python_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into ``(path, display_path)`` pairs."""
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates: Iterable[Path] = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append((path, path.as_posix()))
    return out


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> RunResult:
    """Run every (selected) rule over every Python file under ``paths``."""
    rules = rule_registry()
    if select is not None:
        unknown = set(select) - rules.keys()
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = {name: rule for name, rule in rules.items() if name in set(select)}
    if ignore is not None:
        unknown = set(ignore) - rule_registry().keys()
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = {name: rule for name, rule in rules.items() if name not in set(ignore)}

    result = RunResult()
    for path, display in iter_python_files(paths):
        try:
            ctx = FileContext(path, display)
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(f"{display}: {exc}")
            continue
        result.files += 1
        raw: list[Finding] = []
        for rule in rules.values():
            raw.extend(rule.check(ctx))
        for finding in sorted(raw, key=Finding.sort_key):
            directive = ctx.suppressions.lookup(finding.rule, finding.line)
            if directive is None:
                result.findings.append(finding)
            elif directive.reason:
                result.suppressed.append((finding, directive.reason))
            else:
                # A bare disable is not a justification; the finding stays
                # active so the waiver cannot rot silently.
                result.findings.append(
                    replace(
                        finding,
                        message=finding.message
                        + " [suppression ignored: add a '-- reason' justification]",
                    )
                )
    return result
