"""Flow facts for the concurrency rules (NRP008–NRP011).

PR 8's bugs (unlocked flight-ring advance, racy metric read-modify-writes,
the ``answer_batch`` parameter fallthrough) were all *flow* properties:
which lock is held at a statement, which attributes a class mutates, which
call paths forward which parameters.  This module computes those facts
once per file — a deliberately lightweight CFG-lite, not a real abstract
interpreter — and the rules consume them:

- :class:`ClassFlow` — per-class lock ownership (``self._lock =
  threading.Lock()``), the guarded-attribute map (explicit ``# nrplint:
  guarded-by=_lock`` annotations plus inference from existing ``with
  self._lock:`` writes), attribute types (``self.stats = ServerStats()``),
  and the set of attributes the class assigns at all.
- :class:`ModuleFlow` — the per-module bundle: classes, module-level
  functions, and the union of guarded attributes (the fallback for
  receivers whose type cannot be resolved).
- :func:`held_lock_chains` — the dotted lock expressions (``self._lock``,
  ``self.stats._lock``) whose ``with`` blocks enclose a node, stopping at
  the function boundary (a lock does not flow into a nested ``def`` that
  runs later).
- :func:`iter_mutations` — the write classifier: augmented assignments,
  ``self.x = self.x + 1`` style read-modify-writes, and indexed stores
  into a guarded container (``self._ring[i] = rec`` — the exact shape of
  the flight-ring race).

Everything is memoised on the :class:`~nrplint.core.FileContext` so the
four rules share one analysis pass.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from nrplint.core import FileContext, dotted_name

__all__ = [
    "GUARDED_BY_RE",
    "ClassFlow",
    "ModuleFlow",
    "get_flow",
    "held_lock_chains",
    "iter_functions",
    "iter_mutations",
    "param_names",
    "receiver_chain",
    "walk_local",
]

#: Declares an attribute guarded: ``self._count = 0  # nrplint: guarded-by=_lock``
GUARDED_BY_RE = re.compile(
    r"#\s*nrplint:\s*guarded-by\s*=\s*(?P<lock>[A-Za-z_]\w*)"
)

#: ``threading`` factories whose result makes an attribute a lock.
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

_CTOR_NAMES = ("__init__", "__new__", "__post_init__")

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ClassFlow:
    """Lock/attribute facts for one class definition."""

    name: str
    node: ast.ClassDef
    locks: set[str] = field(default_factory=set)  #: attrs holding a Lock
    guarded: dict[str, str] = field(default_factory=dict)  #: attr → lock attr
    attr_types: dict[str, str] = field(default_factory=dict)  #: attr → class
    owns: set[str] = field(default_factory=set)  #: every self.X assigned
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )


@dataclass
class ModuleFlow:
    """Per-module flow facts shared by the NRP008–NRP011 rules."""

    classes: dict[str, ClassFlow]
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]
    annotations: dict[int, str]  #: source line → guarded-by lock name
    lock_attrs: frozenset[str]  #: union of lock attribute names

    def guarded_anywhere(self, attr: str) -> str | None:
        """The lock guarding ``attr`` in *any* class (type-unresolved path)."""
        for cls in self.classes.values():
            if attr in cls.guarded:
                return cls.guarded[attr]
        return None

    def owned_anywhere(self, attr: str) -> bool:
        return any(attr in cls.owns for cls in self.classes.values())


def receiver_chain(node: ast.AST) -> str | None:
    """Dotted receiver of an attribute access: ``self.stats._lock`` → chain."""
    return dotted_name(node)


def walk_local(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/classes.

    A closure defined inside a ``with lock:`` block runs *later*, outside
    the lock; and a nested ``def`` is its own caller for the purposes of
    parameter threading.  Rules that reason about one function's body use
    this instead of :func:`ast.walk` so nested scopes stay separate.
    """
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (*_FunctionNode, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def param_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    """Every parameter name of ``func``, positional-only through kw-only."""
    args = func.args
    return [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if parts[-1] not in _LOCK_FACTORIES:
        return False
    return len(parts) == 1 or parts[-2] == "threading"


def _collect_annotations(ctx: FileContext) -> dict[int, str]:
    out: dict[int, str] = {}
    for lineno, line in enumerate(ctx.lines, start=1):
        match = GUARDED_BY_RE.search(line)
        if match is not None:
            out[lineno] = match.group("lock")
    return out


def _attr_writes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, str]]:
    """``(assign-node, attr)`` pairs for every ``self.X = ...`` in ``func``."""
    for sub in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = [sub.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield sub, target.attr
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"
                    ):
                        yield sub, element.attr


def _build_class_flow(
    ctx: FileContext,
    node: ast.ClassDef,
    annotations: dict[int, str],
    module_classes: set[str],
) -> ClassFlow:
    flow = ClassFlow(name=node.name, node=node)
    for stmt in node.body:
        if isinstance(stmt, _FunctionNode):
            flow.methods[stmt.name] = stmt
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            # Class-body attribute with a trailing guarded-by annotation.
            lock = annotations.get(stmt.lineno)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    flow.owns.add(target.id)
                    if lock is not None:
                        flow.guarded[target.id] = lock

    for method in flow.methods.values():
        for assign, attr in _attr_writes(method):
            flow.owns.add(attr)
            value = getattr(assign, "value", None)
            if _is_lock_factory(value):
                flow.locks.add(attr)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in module_classes
            ):
                flow.attr_types[attr] = value.func.id
            lock = annotations.get(assign.lineno)
            if lock is not None:
                flow.guarded[attr] = lock

    # Inference: an attribute written under ``with self.<lock>:`` anywhere
    # in the class is guarded by that lock (construction excluded — an
    # object under construction is not yet shared).
    for name, method in flow.methods.items():
        if name in _CTOR_NAMES:
            continue
        for sub in ast.walk(method):
            if not isinstance(sub, (ast.With, ast.AsyncWith)):
                continue
            held = [
                chain.split(".", 1)[1]
                for item in sub.items
                if (chain := dotted_name(item.context_expr)) is not None
                and chain.startswith("self.")
                and chain.split(".", 1)[1] in flow.locks
            ]
            if not held:
                continue
            lock = held[0]
            for body_stmt in sub.body:
                for inner in walk_local(body_stmt):
                    if isinstance(
                        inner, (ast.Assign, ast.AnnAssign, ast.AugAssign)
                    ):
                        for _, attr in _attr_writes_of(inner):
                            flow.guarded.setdefault(attr, lock)
    return flow


def _attr_writes_of(stmt: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            yield stmt, base.attr


def get_flow(ctx: FileContext) -> ModuleFlow:
    """The (memoised) :class:`ModuleFlow` for one file."""
    cached = getattr(ctx, "_nrplint_flow", None)
    if cached is not None:
        return cached
    annotations = _collect_annotations(ctx)
    class_nodes = [
        node for node in ctx.tree.body if isinstance(node, ast.ClassDef)
    ]
    module_classes = {node.name for node in class_nodes}
    classes = {
        node.name: _build_class_flow(ctx, node, annotations, module_classes)
        for node in class_nodes
    }
    functions = {
        node.name: node
        for node in ctx.tree.body
        if isinstance(node, _FunctionNode)
    }
    lock_attrs = frozenset(
        attr for cls in classes.values() for attr in cls.locks
    )
    flow = ModuleFlow(
        classes=classes,
        functions=functions,
        annotations=annotations,
        lock_attrs=lock_attrs,
    )
    ctx._nrplint_flow = flow  # type: ignore[attr-defined]
    return flow


def _looks_like_lock(chain: str, flow: ModuleFlow) -> bool:
    last = chain.rsplit(".", 1)[-1]
    return "lock" in last.lower() or last in flow.lock_attrs


def with_lock_chains(
    node: ast.With | ast.AsyncWith, flow: ModuleFlow
) -> list[str]:
    """The lock expressions a ``with`` statement acquires (dotted chains)."""
    chains: list[str] = []
    for item in node.items:
        chain = dotted_name(item.context_expr)
        if chain is not None and _looks_like_lock(chain, flow):
            chains.append(chain)
    return chains


def held_lock_chains(
    ctx: FileContext, node: ast.AST, flow: ModuleFlow
) -> set[str]:
    """Every lock chain whose ``with`` block encloses ``node``.

    Stops at the first function boundary: a lock acquired in the enclosing
    function is *not* held inside a nested ``def`` that runs later.
    """
    held: set[str] = set()
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (*_FunctionNode, ast.ClassDef)):
            break
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            held.update(with_lock_chains(ancestor, flow))
    return held


def iter_functions(
    ctx: FileContext,
) -> Iterator[tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function in the module, paired with its enclosing class."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, _FunctionNode):
            yield ctx.enclosing_class(node), node


def _reads_attr(expr: ast.AST, receiver: str, attr: str) -> bool:
    wanted = f"{receiver}.{attr}"
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and dotted_name(sub) == wanted:
            return True
    return False


def iter_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, str, str, str]]:
    """``(node, receiver, attr, kind)`` for each attribute mutation.

    Three shapes count — all of them the read-modify-write family that
    loses updates under concurrency (a plain rebind ``self.x = value`` is
    atomic under the GIL and is deliberately *not* reported):

    - ``recv.attr += ...`` / ``recv.attr[i] += ...``  (augmented)
    - ``recv.attr = f(recv.attr)``                    (rmw assignment)
    - ``recv.attr[i] = ...``                          (indexed store)

    Nested ``def``s are excluded — :func:`iter_functions` visits them as
    functions in their own right.
    """
    for sub in walk_local(func):
        if isinstance(sub, ast.AugAssign):
            target = sub.target
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute):
                receiver = receiver_chain(target.value)
                if receiver is not None:
                    yield sub, receiver, target.attr, "augmented assignment"
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Attribute):
                    receiver = receiver_chain(target.value)
                    if receiver is not None and _reads_attr(
                        sub.value, receiver, target.attr
                    ):
                        yield (
                            sub,
                            receiver,
                            target.attr,
                            "read-modify-write assignment",
                        )
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ):
                    receiver = receiver_chain(target.value.value)
                    if receiver is not None:
                        yield sub, receiver, target.value.attr, "indexed store"
