"""The ``python -m nrplint`` command line.

Exit codes: 0 clean (baselined/suppressed findings do not fail the run),
1 at least one new finding or unparseable file, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from nrplint.baseline import DEFAULT_BASELINE_PATH, Baseline
from nrplint.core import lint_paths, rule_registry
from nrplint.report import render_json, render_sarif, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m nrplint",
        description="Repo-specific static analysis for the NRP reproduction "
        "(layering, determinism, float discipline, obs guards, encapsulation, "
        "kernel purity).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif emits SARIF 2.1.0 for "
        "GitHub code scanning)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE_PATH,
        help="baseline file of grandfathered findings "
        "(default: tools/nrplint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file to absorb every current finding",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print baselined and suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(rule_registry().items()):
            print(f"{rule.code}  {name:15s} {rule.summary}")
        return 0

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        result = lint_paths(args.paths, select=select, ignore=ignore)
    except ValueError as exc:
        parser.error(str(exc))

    if args.update_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(
            f"wrote {args.baseline} ({len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'})"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    new, baselined = baseline.split(result.findings)

    if args.format == "json":
        print(json.dumps(render_json(result, new, baselined), indent=2))
    elif args.format == "sarif":
        print(json.dumps(render_sarif(result, new, baselined), indent=2))
    else:
        print(render_text(result, new, baselined, verbose=args.verbose))
    return 1 if new or result.errors else 0


if __name__ == "__main__":
    sys.exit(main())
