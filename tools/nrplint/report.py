"""Text, JSON, and SARIF reporters, plus the report-schema validator.

The JSON document is schema-versioned (``nrplint.report/2`` — ``/2``
added the NRP008–NRP011 concurrency rules to the findings enum) like the
observability exports, and the checked-in ``tools/nrplint/schema.json``
pins its shape; :func:`validate_report` is the same deliberately small
JSON-Schema subset used by ``tools/check_obs_schema.py`` (``type``,
``required``, ``properties``, ``additionalProperties``, ``items``,
``enum``, ``const``, ``minimum``), so the tests can verify every report
against the schema without any third-party dependency.

:func:`render_sarif` emits SARIF 2.1.0 for GitHub code scanning: new
findings as ``error`` results, baselined/suppressed ones as ``note``
results carrying a ``suppressions`` entry, the full rule catalogue on
the tool driver, and snippet-based ``partialFingerprints`` (the same
line-number-independent identity the baseline uses, so results track
across rebases).  ``tools/nrplint/sarif_schema.json`` pins the subset of
the 2.1.0 shape we emit and is checked by the same validator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from nrplint.core import Finding, RunResult, rule_registry

__all__ = [
    "REPORT_SCHEMA_ID",
    "SARIF_SCHEMA_PATH",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "SCHEMA_PATH",
    "render_text",
    "render_json",
    "render_sarif",
    "validate_report",
    "validate_sarif",
]

REPORT_SCHEMA_ID = "nrplint.report/2"
SCHEMA_PATH = Path(__file__).resolve().parent / "schema.json"

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_SCHEMA_PATH = Path(__file__).resolve().parent / "sarif_schema.json"


def _finding_dict(finding: Finding) -> dict[str, Any]:
    return {
        "rule": finding.rule,
        "code": finding.code,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def render_json(
    result: RunResult,
    new: list[Finding],
    baselined: list[Finding],
) -> dict[str, Any]:
    """The machine-readable report (``new`` ∪ ``baselined`` == active)."""
    return {
        "schema": REPORT_SCHEMA_ID,
        "summary": {
            "files": result.files,
            "findings": len(new),
            "baselined": len(baselined),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
        },
        "findings": [_finding_dict(f) for f in new],
        "baselined": [_finding_dict(f) for f in baselined],
        "suppressed": [
            {**_finding_dict(f), "reason": reason} for f, reason in result.suppressed
        ],
        "errors": list(result.errors),
    }


def render_text(
    result: RunResult,
    new: list[Finding],
    baselined: list[Finding],
    verbose: bool = False,
) -> str:
    """Human-readable ``path:line:col: CODE [rule] message`` lines."""
    lines: list[str] = []
    for finding in new:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.code} [{finding.rule}] {finding.message}"
        )
    if verbose:
        for finding in baselined:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.code} [{finding.rule}] (baselined) {finding.message}"
            )
        for finding, reason in result.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.code} [{finding.rule}] (suppressed: {reason}) "
                f"{finding.message}"
            )
    lines.extend(result.errors)
    summary = (
        f"{result.files} files checked: {len(new)} finding(s), "
        f"{len(baselined)} baselined, {len(result.suppressed)} suppressed"
    )
    if result.errors:
        summary += f", {len(result.errors)} file error(s)"
    lines.append(summary)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SARIF 2.1.0 (GitHub code scanning)
# ----------------------------------------------------------------------
def _sarif_rules() -> list[dict[str, Any]]:
    """The driver's rule catalogue, ordered by stable code."""
    return [
        {
            "id": rule.code,
            "name": "".join(
                part.capitalize() for part in name.split("-")
            ),
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
            "properties": {"slug": name},
        }
        for name, rule in sorted(
            rule_registry().items(), key=lambda kv: kv[1].code
        )
    ]


def _sarif_result(
    finding: Finding,
    rule_index: dict[str, int],
    level: str,
    suppression: dict[str, str] | None = None,
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; Finding.col is the
                        # 0-based AST col_offset.
                        "startColumn": finding.col + 1,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        # Same line-number-independent identity the baseline uses, so
        # code scanning tracks a result across rebases.
        "partialFingerprints": {
            "nrplintKey/v1": f"{finding.rule}::{finding.path}::{finding.snippet}"
        },
    }
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def render_sarif(
    result: RunResult,
    new: list[Finding],
    baselined: list[Finding],
) -> dict[str, Any]:
    """The SARIF 2.1.0 document (``new`` = error, rest = suppressed note)."""
    rules = _sarif_rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [_sarif_result(f, rule_index, "error") for f in new]
    results += [
        _sarif_result(
            f,
            rule_index,
            "note",
            {"kind": "external", "justification": "grandfathered in baseline"},
        )
        for f in baselined
    ]
    results += [
        _sarif_result(
            f, rule_index, "note", {"kind": "inSource", "justification": reason}
        )
        for f, reason in result.suppressed
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "nrplint",
                        # Rule docs live in docs/static_analysis.md; the
                        # repo has no canonical public URI to point at.
                        "semanticVersion": REPORT_SCHEMA_ID.rsplit("/", 1)[-1]
                        + ".0.0",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "exitCode": 1 if (new or result.errors) else 0,
                    }
                ],
                "results": results,
            }
        ],
    }


def validate_sarif(document: Any) -> list[str]:
    """Errors from the checked-in SARIF 2.1.0 subset schema (empty = valid)."""
    schema = json.loads(SARIF_SCHEMA_PATH.read_text(encoding="utf-8"))
    return validate_report(document, schema)


# ----------------------------------------------------------------------
# Schema validation (stdlib-only JSON-Schema subset)
# ----------------------------------------------------------------------
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def validate_report(value: Any, schema: dict[str, Any] | None = None, path: str = "$") -> list[str]:
    """Return schema errors for a report document (empty when valid)."""
    if schema is None:
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    errors: list[str] = []
    if "const" in schema and value != schema["const"]:
        return [f"{path}: expected {schema['const']!r}, got {value!r}"]
    if "enum" in schema and value not in schema["enum"]:
        return [f"{path}: {value!r} not in {schema['enum']!r}"]
    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(_type_ok(value, n) for n in names):
            return [
                f"{path}: expected type {'/'.join(names)}, got {type(value).__name__}"
            ]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{path}: {value!r} below minimum {minimum!r}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                errors.extend(validate_report(value[key], sub, f"{path}.{key}"))
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for key, item in value.items():
                if key not in properties:
                    errors.extend(validate_report(item, additional, f"{path}.{key}"))
        elif additional is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate_report(item, schema["items"], f"{path}[{i}]"))
    return errors
