#!/usr/bin/env python3
"""Noise-aware perf-regression gate over benchmark artefacts.

Diffs the machine-readable benchmark outputs against a checked-in
baseline and flags regressions:

- ``benchmarks/results/*.metrics.json`` sidecars (observability-registry
  snapshots written by ``benchmarks/conftest.py``): per-timer mean
  latencies and, when present (metrics schema >= 2), per-histogram
  p50/p95/p99.
- cumulative ``BENCH_*.json`` trajectory files (e.g. the kernel
  micro-benchmark's ``BENCH_kernels.json``): the latest run's
  ``timings_us`` against the best earlier run in the same file.

Noise handling — both knobs must trip before anything is a regression:

- a **relative threshold** (``--threshold``, default 25%): timings within
  the band are treated as machine noise, not regressions;
- an **absolute floor** (``--min-seconds`` / ``--min-us``): timings whose
  baseline is below the floor are too small to compare reliably and are
  skipped entirely.

Counter values are compared exactly but reported as *drift* notes, never
failures: a counter change means the workload's algorithmic shape changed
(more concatenations, fewer pruned paths), which deserves eyes but has a
bit-identity test suite to decide correctness.

Exit codes: 0 clean (or ``--advisory``), 1 regressions found, 2 usage.
Stdlib-only by design — CI runs it before installing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare_sidecars", "compare_trajectory", "main"]


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _timer_means(document: dict) -> dict[str, float]:
    means = {}
    for name, data in document.get("timers", {}).items():
        if data.get("count"):
            means[name] = data["total_seconds"] / data["count"]
    return means


def _histogram_quantiles(document: dict) -> dict[str, float]:
    """``{"<hist>/p50": value, ...}`` for every quantile the dump carries."""
    out = {}
    for name, data in document.get("histograms", {}).items():
        for key in ("p50", "p95", "p99"):
            value = data.get(key)
            if value is not None:
                out[f"{name}/{key}"] = value
    return out


def compare_sidecars(
    baseline: dict,
    current: dict,
    *,
    threshold: float,
    min_seconds: float,
) -> tuple[list[str], list[str]]:
    """Diff two metrics sidecars -> ``(regressions, drift_notes)``."""
    regressions: list[str] = []
    notes: list[str] = []
    base_times = _timer_means(baseline)
    base_times.update(_histogram_quantiles(baseline))
    cur_times = _timer_means(current)
    cur_times.update(_histogram_quantiles(current))
    for name in sorted(base_times):
        base = base_times[name]
        cur = cur_times.get(name)
        if cur is None or base < min_seconds:
            continue
        if cur > base * (1.0 + threshold):
            regressions.append(
                f"{name}: {_fmt_s(base)} -> {_fmt_s(cur)} "
                f"(+{(cur / base - 1.0) * 100.0:.1f}% > {threshold * 100.0:.0f}%)"
            )
    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for name in sorted(base_counters):
        base = base_counters[name].get("value", 0)
        cur = cur_counters.get(name, {}).get("value")
        if cur is not None and cur != base:
            notes.append(f"{name}: {base} -> {cur} ({cur - base:+d})")
    return regressions, notes


def compare_trajectory(
    document: dict,
    *,
    threshold: float,
    min_us: float,
) -> tuple[list[str], list[str]]:
    """Latest run vs the best earlier run of one ``BENCH_*.json`` file."""
    runs = document.get("runs", [])
    if len(runs) < 2:
        return [], [f"only {len(runs)} run(s) recorded; nothing to compare"]
    latest = runs[-1].get("timings_us", {})
    regressions: list[str] = []
    notes: list[str] = []
    for key in sorted(latest):
        earlier = [
            run["timings_us"][key]
            for run in runs[:-1]
            if key in run.get("timings_us", {})
        ]
        if not earlier:
            notes.append(f"{key}: new timing, no earlier run to compare")
            continue
        best = min(earlier)
        cur = latest[key]
        if best < min_us:
            continue
        if cur > best * (1.0 + threshold):
            regressions.append(
                f"{key}: best {best:.1f} us -> latest {cur:.1f} us "
                f"(+{(cur / best - 1.0) * 100.0:.1f}% > {threshold * 100.0:.0f}%)"
            )
    return regressions, notes


def _load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}", file=sys.stderr)
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="diff benchmark sidecars/trajectories against a baseline",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="directory of checked-in baseline *.metrics.json sidecars",
    )
    parser.add_argument(
        "--results",
        type=Path,
        required=True,
        help="directory of freshly produced *.metrics.json sidecars",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        action="append",
        default=[],
        help="cumulative BENCH_*.json file(s): compare the latest run "
        "against the best earlier run (repeatable)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative slowdown tolerated before flagging (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="skip sidecar timings whose baseline mean is under this "
        "(too noisy to compare; default 0.005 s)",
    )
    parser.add_argument(
        "--min-us",
        type=float,
        default=50.0,
        help="skip trajectory timings whose best earlier run is under "
        "this (default 50 us)",
    )
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but always exit 0 (CI advisory mode)",
    )
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"bench_compare: no baseline dir {args.baseline}", file=sys.stderr)
        return 2
    if not args.results.is_dir():
        print(f"bench_compare: no results dir {args.results}", file=sys.stderr)
        return 2

    regressions: list[str] = []
    compared = 0
    for base_path in sorted(args.baseline.glob("*.metrics.json")):
        cur_path = args.results / base_path.name
        if not cur_path.is_file():
            print(f"-- {base_path.name}: no fresh sidecar, skipped")
            continue
        base_doc = _load(base_path)
        cur_doc = _load(cur_path)
        if base_doc is None or cur_doc is None:
            continue
        compared += 1
        found, notes = compare_sidecars(
            base_doc,
            cur_doc,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
        status = f"{len(found)} regression(s)" if found else "ok"
        print(f"-- {base_path.name}: {status}")
        for line in found:
            print(f"   REGRESSION {line}")
            regressions.append(f"{base_path.name}: {line}")
        for line in notes:
            print(f"   drift {line}")
    for traj_path in args.trajectory:
        doc = _load(traj_path)
        if doc is None:
            continue
        compared += 1
        found, notes = compare_trajectory(
            doc, threshold=args.threshold, min_us=args.min_us
        )
        status = f"{len(found)} regression(s)" if found else "ok"
        print(f"-- {traj_path.name}: {status}")
        for line in found:
            print(f"   REGRESSION {line}")
            regressions.append(f"{traj_path.name}: {line}")
        for line in notes:
            print(f"   note {line}")

    if compared == 0:
        print("bench_compare: nothing to compare", file=sys.stderr)
        return 2
    if regressions:
        print(
            f"bench_compare: {len(regressions)} perf regression(s) over "
            f"{compared} artefact(s)"
            + (" [advisory: not failing]" if args.advisory else "")
        )
        return 0 if args.advisory else 1
    print(f"bench_compare: {compared} artefact(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
