#!/usr/bin/env python3
"""Validate a ``repro.obs`` export document against docs/obs_schema.json.

Usage::

    python tools/check_obs_schema.py DUMP.json [TRACE.json ...]

The document kind is auto-detected: a top-level ``traceEvents`` key selects
the Chrome trace-event schema (``repro.obs.trace/1:chrome``); otherwise the
document's own ``schema`` field picks the entry.  Exit code 0 means every
file validated; any problem prints a path-qualified error and exits 1.

The validator is a deliberately small, dependency-free subset of JSON
Schema — exactly the keywords docs/obs_schema.json uses: ``type``,
``required``, ``properties``, ``additionalProperties`` (as a schema for
map values), ``items``, ``enum``, ``const``, ``minimum``.  On top of the
structural check, metrics documents (``repro.obs.metrics/1`` and ``/2``)
must carry every
kernel-layer metric listed under ``_kernel_metrics`` in the schema file —
those names are pre-registered at import, so a dump missing one means the
taxonomy and the code have drifted.  ``/2`` documents must additionally
carry the serving plane's ``_serve_metrics`` taxonomy (counters, gauges,
histograms) — legacy ``/1`` baselines pre-date it.  CI runs it on a fresh
``repro obs dump`` and ``repro query --trace`` output on every supported
Python version, so exported documents cannot drift from the checked-in
schema unnoticed.

Every run also cross-checks the *other* schema gate: the nrplint report
schema (``tools/nrplint/schema.json``) must pin the exact version id the
analyzer emits and the exact rule catalogue it registers, so the two
schema-versioned surfaces cannot drift apart silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "docs" / "obs_schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def validate(value, schema: dict, path: str = "$") -> list[str]:
    """Return a list of error strings (empty when the document conforms)."""
    errors: list[str] = []
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return errors
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")
        return errors
    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(_type_ok(value, n) for n in names):
            errors.append(
                f"{path}: expected type {'/'.join(names)}, "
                f"got {type(value).__name__}"
            )
            return errors
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{path}: {value!r} below minimum {minimum!r}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                errors.extend(validate(value[key], sub, f"{path}.{key}"))
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for key, item in value.items():
                if key not in properties:
                    errors.extend(validate(item, additional, f"{path}.{key}"))
        elif additional is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def schema_id_for(document: dict) -> str:
    """Auto-detect which checked-in schema a document claims to follow."""
    if "traceEvents" in document:
        return "repro.obs.trace/1:chrome"
    schema_id = document.get("schema")
    if not isinstance(schema_id, str):
        raise ValueError("document has neither 'traceEvents' nor a 'schema' field")
    return schema_id


def kernel_metric_errors(document: dict, schemas: dict) -> list[str]:
    """The kernel-layer names from ``_kernel_metrics`` must be present in a
    metrics dump — pre-registration guarantees them even at value zero."""
    errors: list[str] = []
    documented = schemas.get("_kernel_metrics", {})
    for section in ("counters", "timers"):
        present = document.get(section)
        if not isinstance(present, dict):
            continue  # structural validation already reported this
        for name in documented.get(section, ()):
            if name not in present:
                errors.append(
                    f"$.{section}: missing pre-registered kernel metric {name!r}"
                )
    return errors


def serve_metric_errors(document: dict, schemas: dict) -> list[str]:
    """The serving plane's health/lifecycle taxonomy (``_serve_metrics``)
    must be present in every current-format metrics dump.

    Only enforced for ``repro.obs.metrics/2``: the legacy ``/1`` sidecar
    baselines pre-date the serving plane and stay valid as checked in.
    """
    errors: list[str] = []
    documented = schemas.get("_serve_metrics", {})
    for section in ("counters", "gauges", "histograms"):
        present = document.get(section)
        if not isinstance(present, dict):
            continue  # structural validation already reported this
        for name in documented.get(section, ()):
            if name not in present:
                errors.append(
                    f"$.{section}: missing pre-registered serve metric {name!r}"
                )
    return errors


def check_file(path: Path, schemas: dict) -> list[str]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    if not isinstance(document, dict):
        return [f"{path}: top level must be a JSON object"]
    try:
        schema_id = schema_id_for(document)
    except ValueError as exc:
        return [f"{path}: {exc}"]
    schema = schemas.get(schema_id)
    if schema is None:
        return [f"{path}: unknown schema id {schema_id!r}"]
    errors = validate(document, schema)
    if schema_id in ("repro.obs.metrics/1", "repro.obs.metrics/2"):
        errors.extend(kernel_metric_errors(document, schemas))
    if schema_id == "repro.obs.metrics/2":
        errors.extend(serve_metric_errors(document, schemas))
    return [f"{path} [{schema_id}] {e}" for e in errors]


def nrplint_schema_errors() -> list[str]:
    """The two schema gates must not drift: the nrplint report schema's
    pinned version/rule enum and the analyzer itself have to agree.

    A rule added without bumping ``tools/nrplint/schema.json`` (or a
    version bump that the analyzer does not emit) would otherwise only
    surface when some later report failed validation; checking it here
    ties the drift to the same CI step that guards the obs schemas.
    """
    tools_dir = str(Path(__file__).resolve().parent)
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    try:
        from nrplint.core import rule_registry
        from nrplint.report import REPORT_SCHEMA_ID, SCHEMA_PATH as NRPLINT_SCHEMA
    except ImportError as exc:  # pragma: no cover - tree layout violation
        return [f"nrplint not importable from {tools_dir}: {exc}"]
    errors: list[str] = []
    try:
        schema = json.loads(NRPLINT_SCHEMA.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{NRPLINT_SCHEMA}: unreadable: {exc}"]
    declared = schema.get("properties", {}).get("schema", {}).get("const")
    if declared != REPORT_SCHEMA_ID:
        errors.append(
            f"nrplint schema drift: schema.json pins {declared!r} but the "
            f"analyzer emits {REPORT_SCHEMA_ID!r}"
        )
    pinned = set(
        schema.get("properties", {})
        .get("findings", {})
        .get("items", {})
        .get("properties", {})
        .get("rule", {})
        .get("enum", ())
    )
    registered = set(rule_registry())
    if pinned != registered:
        missing = sorted(registered - pinned)
        stale = sorted(pinned - registered)
        detail = []
        if missing:
            detail.append(f"rules missing from the enum: {missing}")
        if stale:
            detail.append(f"stale enum entries: {stale}")
        errors.append("nrplint schema drift: " + "; ".join(detail))
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    schemas = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    failed = False
    drift = nrplint_schema_errors()
    if drift:
        failed = True
        print("\n".join(drift), file=sys.stderr)
    else:
        print("nrplint schema: OK (version and rule enum match the analyzer)")
    for name in argv:
        errors = check_file(Path(name), schemas)
        if errors:
            failed = True
            print("\n".join(errors), file=sys.stderr)
        else:
            print(f"{name}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
